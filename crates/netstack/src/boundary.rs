//! Fixed-latency links between MAP domains — the lookahead contract of
//! the sharded metro kernel.
//!
//! When a simulation is partitioned by MAP domain, the only way traffic
//! crosses a partition is a [`BoundaryLink`]: an abstracted inter-MAP
//! transport (the operator core network between two MAP routers) with a
//! **fixed, strictly positive latency**. That latency is not just a
//! model parameter — its minimum over all boundary links is the
//! conservative lookahead the epoch executor
//! ([`fh_sim::shard::run_epochs`]) uses to advance domains in parallel:
//! a message sent during epoch `[kL, (k+1)L)` cannot arrive before
//! `kL + L`, so every domain can burn through the epoch without peeking
//! at its peers.
//!
//! The link itself is deliberately simple (no queueing, no loss): core
//! inter-MAP paths are orders of magnitude fatter than the access links
//! the paper studies, so the interesting contention stays inside the
//! domains. What the link does own is *accounting* — packets and bytes
//! forwarded per direction — so the metro report can show cross-domain
//! traffic volume per boundary.

use fh_sim::{SimDuration, SimTime};

/// Index of a MAP domain in a metro deployment. Dense, assigned in
/// topology declaration order, and used as the shard index by the epoch
/// executor and as the salt index for per-domain RNG lineages
/// ([`fh_sim::derive_domain_seed`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DomainId(pub u32);

impl DomainId {
    /// The domain index as a usize (shard index).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for DomainId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// A fixed-latency inter-domain transport between two MAP domains.
///
/// Direction-agnostic: one link serves both `a → b` and `b → a`, with
/// per-direction counters. Latency is immutable after construction —
/// the epoch schedule is derived from it, so a mid-run change would
/// invalidate the lookahead proof.
#[derive(Debug, Clone)]
pub struct BoundaryLink {
    a: DomainId,
    b: DomainId,
    latency: SimDuration,
    /// Packets forwarded in the `a → b` / `b → a` direction.
    forwarded: [u64; 2],
    /// Bytes forwarded in the `a → b` / `b → a` direction.
    bytes: [u64; 2],
}

impl BoundaryLink {
    /// Creates a boundary link between `a` and `b` with the given
    /// one-way latency.
    ///
    /// # Panics
    ///
    /// Panics if `latency` is zero (zero lookahead admits no
    /// conservative parallel schedule) or if `a == b` (a domain needs
    /// no boundary to reach itself).
    #[must_use]
    pub fn new(a: DomainId, b: DomainId, latency: SimDuration) -> Self {
        assert!(
            !latency.is_zero(),
            "boundary link {a}-{b} must have latency > 0 (it is the lookahead)"
        );
        assert_ne!(a, b, "boundary link endpoints must differ");
        BoundaryLink {
            a,
            b,
            latency,
            forwarded: [0; 2],
            bytes: [0; 2],
        }
    }

    /// The two endpoint domains, in construction order.
    #[must_use]
    pub fn endpoints(&self) -> (DomainId, DomainId) {
        (self.a, self.b)
    }

    /// The fixed one-way latency.
    #[must_use]
    pub fn latency(&self) -> SimDuration {
        self.latency
    }

    /// `true` if this link connects `from` to some other domain.
    #[must_use]
    pub fn serves(&self, from: DomainId) -> bool {
        self.a == from || self.b == from
    }

    /// The far end as seen from `from`, or `None` if `from` is not an
    /// endpoint.
    #[must_use]
    pub fn peer(&self, from: DomainId) -> Option<DomainId> {
        if self.a == from {
            Some(self.b)
        } else if self.b == from {
            Some(self.a)
        } else {
            None
        }
    }

    /// Accounts one packet of `size` bytes crossing from `from`,
    /// returning its arrival time at the peer.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not an endpoint of this link.
    pub fn forward(&mut self, from: DomainId, now: SimTime, size: u32) -> SimTime {
        let dir = if self.a == from {
            0
        } else {
            assert_eq!(
                self.b, from,
                "domain {from} is not on link {}-{}",
                self.a, self.b
            );
            1
        };
        self.forwarded[dir] += 1;
        self.bytes[dir] += u64::from(size);
        now + self.latency
    }

    /// Total packets forwarded, both directions.
    #[must_use]
    pub fn packets_forwarded(&self) -> u64 {
        self.forwarded[0] + self.forwarded[1]
    }

    /// Total bytes forwarded, both directions.
    #[must_use]
    pub fn bytes_forwarded(&self) -> u64 {
        self.bytes[0] + self.bytes[1]
    }
}

/// The boundary fabric of a metro deployment: every inter-domain link,
/// plus the derived conservative lookahead.
///
/// In the common full-mesh case (every MAP pair connected through the
/// operator core at uniform latency) use [`BoundaryFabric::full_mesh`];
/// irregular topologies can [`BoundaryFabric::add`] links one at a time.
#[derive(Debug, Clone, Default)]
pub struct BoundaryFabric {
    links: Vec<BoundaryLink>,
}

impl BoundaryFabric {
    /// An empty fabric (single-domain deployments have no boundaries).
    #[must_use]
    pub fn new() -> Self {
        BoundaryFabric::default()
    }

    /// A full mesh over `domains` domains at uniform `latency`.
    ///
    /// # Panics
    ///
    /// Panics if `domains > 1` and `latency` is zero.
    #[must_use]
    pub fn full_mesh(domains: u32, latency: SimDuration) -> Self {
        let mut fabric = BoundaryFabric::new();
        for a in 0..domains {
            for b in (a + 1)..domains {
                fabric.add(BoundaryLink::new(DomainId(a), DomainId(b), latency));
            }
        }
        fabric
    }

    /// Adds a link to the fabric.
    pub fn add(&mut self, link: BoundaryLink) {
        self.links.push(link);
    }

    /// All links, in insertion order.
    #[must_use]
    pub fn links(&self) -> &[BoundaryLink] {
        &self.links
    }

    /// Mutable access to the links (for forwarding accounting).
    pub fn links_mut(&mut self) -> &mut [BoundaryLink] {
        &mut self.links
    }

    /// The conservative lookahead: the minimum latency over all links,
    /// or `None` for an empty fabric (single domain — no lookahead
    /// needed, the epoch executor bypasses the barrier entirely).
    #[must_use]
    pub fn lookahead(&self) -> Option<SimDuration> {
        self.links.iter().map(BoundaryLink::latency).min()
    }

    /// Finds the link connecting `from` and `to`, if any.
    #[must_use]
    pub fn link_between(&mut self, from: DomainId, to: DomainId) -> Option<&mut BoundaryLink> {
        self.links.iter_mut().find(|l| l.peer(from) == Some(to))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_accounts_per_direction_and_returns_arrival() {
        let mut link = BoundaryLink::new(DomainId(0), DomainId(1), SimDuration::from_millis(8));
        let t = link.forward(DomainId(0), SimTime::from_millis(100), 1_500);
        assert_eq!(t, SimTime::from_millis(108));
        let t = link.forward(DomainId(1), SimTime::from_millis(200), 200);
        assert_eq!(t, SimTime::from_millis(208));
        assert_eq!(link.packets_forwarded(), 2);
        assert_eq!(link.bytes_forwarded(), 1_700);
    }

    #[test]
    fn peer_resolution() {
        let link = BoundaryLink::new(DomainId(2), DomainId(5), SimDuration::from_millis(1));
        assert_eq!(link.peer(DomainId(2)), Some(DomainId(5)));
        assert_eq!(link.peer(DomainId(5)), Some(DomainId(2)));
        assert_eq!(link.peer(DomainId(3)), None);
        assert!(link.serves(DomainId(2)));
        assert!(!link.serves(DomainId(3)));
    }

    #[test]
    #[should_panic(expected = "latency > 0")]
    fn zero_latency_is_rejected() {
        let _ = BoundaryLink::new(DomainId(0), DomainId(1), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "endpoints must differ")]
    fn self_link_is_rejected() {
        let _ = BoundaryLink::new(DomainId(3), DomainId(3), SimDuration::from_millis(1));
    }

    #[test]
    fn full_mesh_link_count_and_lookahead() {
        let fabric = BoundaryFabric::full_mesh(4, SimDuration::from_millis(6));
        assert_eq!(fabric.links().len(), 6); // C(4,2)
        assert_eq!(fabric.lookahead(), Some(SimDuration::from_millis(6)));
        assert!(BoundaryFabric::new().lookahead().is_none());
        assert_eq!(
            BoundaryFabric::full_mesh(1, SimDuration::ZERO)
                .links()
                .len(),
            0
        );
    }

    #[test]
    fn lookahead_is_the_minimum_latency() {
        let mut fabric = BoundaryFabric::new();
        fabric.add(BoundaryLink::new(
            DomainId(0),
            DomainId(1),
            SimDuration::from_millis(12),
        ));
        fabric.add(BoundaryLink::new(
            DomainId(1),
            DomainId(2),
            SimDuration::from_millis(5),
        ));
        assert_eq!(fabric.lookahead(), Some(SimDuration::from_millis(5)));
        assert!(fabric.link_between(DomainId(0), DomainId(1)).is_some());
        assert!(fabric.link_between(DomainId(0), DomainId(2)).is_none());
    }
}
