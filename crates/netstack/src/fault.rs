//! Deterministic fault injection for links and radio channels.
//!
//! A [`FaultSpec`] describes the impairments of one link *direction* (or one
//! access point's air interface): independent packet loss, Gilbert–Elliott
//! burst loss, duplication, bounded extra jitter, and scheduled outage
//! windows. A [`FaultState`] pairs the spec with its own [`Rng64`] stream,
//! seeded once when the scenario is built, so fault decisions depend only on
//! the order of packets entering *that* direction — never on how traffic on
//! other links interleaves, and never on worker-thread scheduling in
//! parallel sweeps.
//!
//! Faults are applied at the point a packet enters the link; every injected
//! drop is recorded under [`crate::DropReason::FaultInjected`].
//!
//! # Examples
//!
//! ```
//! use fh_net::{FaultSpec, FaultState, FaultVerdict};
//! use fh_sim::SimTime;
//!
//! let spec = FaultSpec::with_loss(1.0); // drop everything
//! let mut state = FaultState::new(spec, 7);
//! assert!(matches!(state.decide(SimTime::ZERO), FaultVerdict::Drop));
//! ```

use fh_sim::{Rng64, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Maximum scheduled outage windows per direction. A fixed-size array keeps
/// [`FaultSpec`] `Copy`, which scenario configs rely on.
pub const MAX_OUTAGES: usize = 4;

/// Two-state Gilbert–Elliott burst-loss channel.
///
/// The channel flips between a *good* and a *bad* state with the given
/// per-packet transition probabilities and drops packets with a
/// state-dependent probability — the standard model for correlated
/// (bursty) wireless loss.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GilbertElliott {
    /// P(good → bad) evaluated per packet.
    pub p_good_to_bad: f64,
    /// P(bad → good) evaluated per packet.
    pub p_bad_to_good: f64,
    /// Loss probability while in the good state.
    pub loss_good: f64,
    /// Loss probability while in the bad state.
    pub loss_bad: f64,
}

/// Impairments applied to one link direction (or one AP's air interface).
///
/// The default spec is a no-op: no loss, no duplication, no jitter, no
/// outages. Build real specs with the `with_*` constructors/combinators.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Independent per-packet loss probability (ignored when `burst` is set).
    pub loss: f64,
    /// Optional correlated burst-loss channel (overrides `loss`).
    pub burst: Option<GilbertElliott>,
    /// Probability a packet is duplicated (second copy right behind).
    pub duplicate: f64,
    /// Upper bound on uniformly drawn extra propagation jitter.
    pub jitter: SimDuration,
    /// Scheduled outage windows `[start, end)`; all packets entering the
    /// link inside a window are dropped.
    pub outages: [Option<(SimTime, SimTime)>; MAX_OUTAGES],
}

impl FaultSpec {
    /// A spec that drops each packet independently with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a probability.
    #[must_use]
    pub fn with_loss(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss must be in [0, 1], got {p}");
        FaultSpec {
            loss: p,
            ..FaultSpec::default()
        }
    }

    /// Replaces independent loss with a Gilbert–Elliott burst channel.
    #[must_use]
    pub fn burst(mut self, ge: GilbertElliott) -> Self {
        for p in [
            ge.p_good_to_bad,
            ge.p_bad_to_good,
            ge.loss_good,
            ge.loss_bad,
        ] {
            assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        }
        self.burst = Some(ge);
        self
    }

    /// Duplicates each surviving packet with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a probability.
    #[must_use]
    pub fn duplicate(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "duplicate must be in [0, 1], got {p}"
        );
        self.duplicate = p;
        self
    }

    /// Adds up to `max` extra uniformly distributed delay per packet.
    #[must_use]
    pub fn jitter(mut self, max: SimDuration) -> Self {
        self.jitter = max;
        self
    }

    /// Schedules an outage: every packet entering in `[start, end)` is lost.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty or all [`MAX_OUTAGES`] slots are taken.
    #[must_use]
    pub fn outage(mut self, start: SimTime, end: SimTime) -> Self {
        assert!(start < end, "outage window must be non-empty");
        let slot = self
            .outages
            .iter_mut()
            .find(|s| s.is_none())
            .expect("too many outage windows");
        *slot = Some((start, end));
        self
    }

    /// Validates every field of a spec assembled from untrusted data
    /// (e.g. a TOML scenario plan), returning the spec on success — the
    /// non-panicking counterpart of the builder asserts. The error names
    /// the offending field and value.
    ///
    /// # Errors
    ///
    /// Returns a message naming the field whose value is out of range.
    pub fn validated(self) -> Result<Self, String> {
        let prob = |name: &str, p: f64| {
            if (0.0..=1.0).contains(&p) {
                Ok(())
            } else {
                Err(format!("{name} must be a probability in [0, 1], got {p}"))
            }
        };
        prob("loss", self.loss)?;
        prob("duplicate", self.duplicate)?;
        if let Some(ge) = self.burst {
            prob("burst.p_good_to_bad", ge.p_good_to_bad)?;
            prob("burst.p_bad_to_good", ge.p_bad_to_good)?;
            prob("burst.loss_good", ge.loss_good)?;
            prob("burst.loss_bad", ge.loss_bad)?;
        }
        for (start, end) in self.outages.iter().flatten() {
            if start >= end {
                return Err(format!(
                    "outage window must be non-empty, got [{start:?}, {end:?})"
                ));
            }
        }
        Ok(self)
    }

    /// `true` if this spec injects no faults at all.
    #[must_use]
    pub fn is_noop(&self) -> bool {
        *self == FaultSpec::default()
    }

    /// `true` if `now` falls inside a scheduled outage window.
    #[must_use]
    pub fn in_outage(&self, now: SimTime) -> bool {
        self.outages
            .iter()
            .flatten()
            .any(|&(s, e)| now >= s && now < e)
    }
}

/// Scheduled whole-node faults: access-router crash (with optional
/// restart) and mobile-host power loss.
///
/// Unlike [`FaultSpec`] these are not per-packet decisions — they fire
/// once, at a scheduled instant, and take all of a node's volatile state
/// with them. A crashed router loses every session, reservation, host
/// route and pending timer; buffered packets are released under
/// [`crate::DropReason::Reclaimed`]. The default spec is a no-op, so node
/// faults are opt-in exactly like link faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct NodeFaultSpec {
    /// The instant the node crashes (access routers) — volatile state lost.
    pub crash_at: Option<SimTime>,
    /// How long a crashed router stays down before restarting cold.
    /// `None` means it never comes back.
    pub restart_after: Option<SimDuration>,
    /// The instant a mobile host loses power permanently (the orphaned
    /// buffer case: the NAR holds packets for a host that never attaches).
    pub power_off_at: Option<SimTime>,
}

impl NodeFaultSpec {
    /// A router crash at `at` with no restart.
    #[must_use]
    pub fn crash(at: SimTime) -> Self {
        NodeFaultSpec {
            crash_at: Some(at),
            ..NodeFaultSpec::default()
        }
    }

    /// A router crash at `at` followed by a cold restart `down` later.
    #[must_use]
    pub fn crash_restart(at: SimTime, down: SimDuration) -> Self {
        NodeFaultSpec {
            crash_at: Some(at),
            restart_after: Some(down),
            ..NodeFaultSpec::default()
        }
    }

    /// A mobile-host power loss at `at` (permanent).
    #[must_use]
    pub fn power_off(at: SimTime) -> Self {
        NodeFaultSpec {
            power_off_at: Some(at),
            ..NodeFaultSpec::default()
        }
    }

    /// `true` if this spec schedules no node fault at all.
    #[must_use]
    pub fn is_noop(&self) -> bool {
        *self == NodeFaultSpec::default()
    }
}

/// What the fault layer decided for one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultVerdict {
    /// The packet is lost at link entry.
    Drop,
    /// The packet proceeds, possibly delayed and/or duplicated.
    Pass {
        /// Extra jitter to add to the arrival time.
        extra_delay: SimDuration,
        /// Whether to transmit a second copy right behind this one.
        duplicate: bool,
    },
}

/// A [`FaultSpec`] plus the mutable state that drives it: a private RNG
/// stream and the Gilbert–Elliott channel state.
#[derive(Debug, Clone)]
pub struct FaultState {
    spec: FaultSpec,
    rng: Rng64,
    in_bad: bool,
}

impl FaultState {
    /// Creates fault state for one direction, with its own RNG stream.
    ///
    /// Seed this from the scenario seed via [`fh_sim::derive_seed`] with a
    /// per-link/per-direction salt so every direction draws independently.
    #[must_use]
    pub fn new(spec: FaultSpec, seed: u64) -> Self {
        FaultState {
            spec,
            rng: Rng64::seed_from(seed),
            in_bad: false,
        }
    }

    /// The spec this state was built from.
    #[must_use]
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Decides the fate of one packet entering the link at `now`.
    ///
    /// The number of RNG draws per packet depends only on the spec (burst
    /// configured → 2, plain loss → 1; +1 each for duplication and jitter
    /// when enabled), so the stream stays aligned across runs.
    pub fn decide(&mut self, now: SimTime) -> FaultVerdict {
        if self.spec.in_outage(now) {
            return FaultVerdict::Drop;
        }
        let lost = if let Some(ge) = self.spec.burst {
            let flip = self.rng.next_f64();
            if self.in_bad {
                if flip < ge.p_bad_to_good {
                    self.in_bad = false;
                }
            } else if flip < ge.p_good_to_bad {
                self.in_bad = true;
            }
            let p = if self.in_bad {
                ge.loss_bad
            } else {
                ge.loss_good
            };
            self.rng.gen_bool(p)
        } else if self.spec.loss > 0.0 {
            self.rng.gen_bool(self.spec.loss)
        } else {
            false
        };
        if lost {
            return FaultVerdict::Drop;
        }
        let duplicate = self.spec.duplicate > 0.0 && self.rng.gen_bool(self.spec.duplicate);
        let extra_delay = if self.spec.jitter > SimDuration::ZERO {
            SimDuration::from_nanos(self.rng.gen_range_u64(self.spec.jitter.as_nanos() + 1))
        } else {
            SimDuration::ZERO
        };
        FaultVerdict::Pass {
            extra_delay,
            duplicate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_noop_and_passes_everything() {
        let spec = FaultSpec::default();
        assert!(spec.is_noop());
        let mut st = FaultState::new(spec, 1);
        for i in 0..100 {
            assert_eq!(
                st.decide(SimTime::from_millis(i)),
                FaultVerdict::Pass {
                    extra_delay: SimDuration::ZERO,
                    duplicate: false
                }
            );
        }
    }

    #[test]
    fn full_loss_drops_everything() {
        let mut st = FaultState::new(FaultSpec::with_loss(1.0), 2);
        for i in 0..100 {
            assert_eq!(st.decide(SimTime::from_millis(i)), FaultVerdict::Drop);
        }
    }

    #[test]
    fn loss_rate_is_roughly_the_configured_probability() {
        let mut st = FaultState::new(FaultSpec::with_loss(0.2), 3);
        let n = 100_000;
        let drops = (0..n)
            .filter(|&i| st.decide(SimTime::from_micros(i)) == FaultVerdict::Drop)
            .count();
        let frac = drops as f64 / n as f64;
        assert!((frac - 0.2).abs() < 0.01, "got {frac}");
    }

    #[test]
    fn same_seed_same_decisions() {
        let spec = FaultSpec::with_loss(0.3)
            .duplicate(0.1)
            .jitter(SimDuration::from_micros(500));
        let mut a = FaultState::new(spec, 99);
        let mut b = FaultState::new(spec, 99);
        for i in 0..1000 {
            assert_eq!(
                a.decide(SimTime::from_micros(i)),
                b.decide(SimTime::from_micros(i))
            );
        }
    }

    #[test]
    fn outage_window_is_total_and_bounded() {
        let spec = FaultSpec::default().outage(SimTime::from_secs(1), SimTime::from_secs(2));
        let mut st = FaultState::new(spec, 4);
        assert!(matches!(
            st.decide(SimTime::from_millis(999)),
            FaultVerdict::Pass { .. }
        ));
        assert_eq!(st.decide(SimTime::from_secs(1)), FaultVerdict::Drop);
        assert_eq!(st.decide(SimTime::from_millis(1999)), FaultVerdict::Drop);
        assert!(matches!(
            st.decide(SimTime::from_secs(2)),
            FaultVerdict::Pass { .. }
        ));
    }

    #[test]
    fn burst_loss_is_correlated() {
        // Long bad bursts with certain loss: drops should come in runs, and
        // overall loss should sit between loss_good and loss_bad.
        let ge = GilbertElliott {
            p_good_to_bad: 0.05,
            p_bad_to_good: 0.2,
            loss_good: 0.0,
            loss_bad: 1.0,
        };
        let mut st = FaultState::new(FaultSpec::default().burst(ge), 5);
        let n = 50_000u64;
        let mut drops = 0u64;
        let mut runs = 0u64;
        let mut prev_drop = false;
        for i in 0..n {
            let drop = st.decide(SimTime::from_micros(i)) == FaultVerdict::Drop;
            drops += u64::from(drop);
            runs += u64::from(drop && !prev_drop);
            prev_drop = drop;
        }
        // Stationary bad-state share = 0.05 / (0.05 + 0.2) = 0.2.
        let frac = drops as f64 / n as f64;
        assert!((frac - 0.2).abs() < 0.02, "loss fraction {frac}");
        // Correlation: mean burst length ≈ 1/p_bad_to_good = 5 ≫ 1.
        let mean_run = drops as f64 / runs as f64;
        assert!(mean_run > 3.0, "bursts too short: {mean_run}");
    }

    #[test]
    fn jitter_stays_within_bound() {
        let max = SimDuration::from_micros(250);
        let mut st = FaultState::new(FaultSpec::default().jitter(max), 6);
        let mut seen_nonzero = false;
        for i in 0..1000 {
            match st.decide(SimTime::from_micros(i)) {
                FaultVerdict::Pass {
                    extra_delay,
                    duplicate,
                } => {
                    assert!(extra_delay <= max);
                    assert!(!duplicate);
                    seen_nonzero |= extra_delay > SimDuration::ZERO;
                }
                FaultVerdict::Drop => panic!("jitter-only spec must not drop"),
            }
        }
        assert!(seen_nonzero, "jitter never drew a positive delay");
    }

    #[test]
    fn duplication_rate_is_roughly_right() {
        let mut st = FaultState::new(FaultSpec::default().duplicate(0.5), 8);
        let n = 10_000;
        let dups = (0..n)
            .filter(|&i| {
                matches!(
                    st.decide(SimTime::from_micros(i)),
                    FaultVerdict::Pass {
                        duplicate: true,
                        ..
                    }
                )
            })
            .count();
        let frac = dups as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.03, "got {frac}");
    }

    #[test]
    fn node_fault_spec_is_noop_by_default() {
        assert!(NodeFaultSpec::default().is_noop());
        assert!(!NodeFaultSpec::crash(SimTime::from_secs(1)).is_noop());
        let cr = NodeFaultSpec::crash_restart(SimTime::from_secs(1), SimDuration::from_secs(2));
        assert_eq!(cr.crash_at, Some(SimTime::from_secs(1)));
        assert_eq!(cr.restart_after, Some(SimDuration::from_secs(2)));
        assert!(!NodeFaultSpec::power_off(SimTime::from_secs(3)).is_noop());
    }

    #[test]
    #[should_panic(expected = "loss must be in")]
    fn out_of_range_loss_panics() {
        let _ = FaultSpec::with_loss(1.5);
    }

    #[test]
    fn validated_accepts_good_specs_and_names_bad_fields() {
        let good = FaultSpec::with_loss(0.2)
            .duplicate(0.1)
            .jitter(SimDuration::from_micros(100));
        assert_eq!(good.validated(), Ok(good));

        let bad = FaultSpec {
            loss: 1.5,
            ..FaultSpec::default()
        };
        assert!(bad.validated().unwrap_err().contains("loss"));

        let bad = FaultSpec {
            duplicate: -0.1,
            ..FaultSpec::default()
        };
        assert!(bad.validated().unwrap_err().contains("duplicate"));

        let bad = FaultSpec {
            burst: Some(GilbertElliott {
                p_good_to_bad: 2.0,
                p_bad_to_good: 0.5,
                loss_good: 0.0,
                loss_bad: 1.0,
            }),
            ..FaultSpec::default()
        };
        assert!(bad.validated().unwrap_err().contains("p_good_to_bad"));

        let mut bad = FaultSpec::default();
        bad.outages[0] = Some((SimTime::from_secs(2), SimTime::from_secs(2)));
        assert!(bad.validated().unwrap_err().contains("outage"));
    }

    #[test]
    #[should_panic(expected = "too many outage windows")]
    fn outage_overflow_panics() {
        let mut spec = FaultSpec::default();
        for i in 0..=MAX_OUTAGES as u64 {
            spec = spec.outage(SimTime::from_secs(10 * i), SimTime::from_secs(10 * i + 1));
        }
    }
}
