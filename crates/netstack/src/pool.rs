//! Struct-of-arrays packet storage addressed by generation-checked handles.
//!
//! Buffered packets spend most of their life waiting; the operations that
//! run while they wait — class counting, realtime drop-front scans,
//! admission accounting — only need a handful of fields. [`PacketPool`]
//! therefore splits every [`Packet`] into a 32-byte *hot* row
//! ([`PacketSlot`]: flow, class, size, seq, created) stored densely, and a
//! *cold* row (addresses, hop limit, payload) that is only touched when the
//! packet enters or leaves the pool. Scans over parked traffic walk the hot
//! rows cache-line by cache-line instead of chasing per-packet `Box`es.
//!
//! # Handle discipline
//!
//! A [`PacketHandle`] is an 8-byte `(index, generation)` pair. Removing a
//! packet bumps the slot's generation, so a stale handle — one held across
//! a remove — can never alias a packet that later reuses the slot: every
//! accessor checks the generation and returns `None` for dead handles.
//! This is the same single-use key discipline the event queue uses for
//! [`EventKey`](fh_sim::EventKey)s.
//!
//! Reassembly is exact: `remove(insert(pkt))` returns a packet equal to the
//! original, field for field, so pooling is invisible to golden outputs.

use std::net::Ipv6Addr;

use fh_sim::SimTime;

use crate::class::ServiceClass;
use crate::packet::{FlowId, Packet, Payload};

/// Generation-checked reference to a packet parked in a [`PacketPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketHandle {
    idx: u32,
    gen: u32,
}

/// The hot (frequently scanned) columns of a pooled packet.
///
/// Kept to 32 bytes — see the layout regression test — so four slots share
/// two cache lines during eviction and accounting scans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketSlot {
    /// When the source created the packet.
    pub created: SimTime,
    /// Per-flow sequence number.
    pub seq: u64,
    /// End-to-end flow id.
    pub flow: FlowId,
    /// Total on-wire size in bytes.
    pub size: u32,
    /// Class-of-service field (raw; see [`PacketSlot::effective_class`]).
    pub class: ServiceClass,
}

impl PacketSlot {
    /// The effective buffering class (unspecified → best effort), matching
    /// [`Packet::effective_class`].
    #[must_use]
    pub fn effective_class(&self) -> ServiceClass {
        self.class.effective()
    }
}

/// The cold columns: touched only on insert and remove.
#[derive(Debug, Clone)]
struct ColdSlot {
    src: Ipv6Addr,
    dst: Ipv6Addr,
    hop_limit: u8,
    payload: Payload,
}

/// A struct-of-arrays arena of parked packets.
#[derive(Debug, Clone, Default)]
pub struct PacketPool {
    hot: Vec<PacketSlot>,
    cold: Vec<ColdSlot>,
    /// Current generation per slot; bumped on remove so stale handles die.
    gens: Vec<u32>,
    free: Vec<u32>,
    live: usize,
}

impl PacketPool {
    /// Creates an empty pool.
    #[must_use]
    pub fn new() -> Self {
        PacketPool::default()
    }

    /// Parks a packet, returning its handle.
    pub fn insert(&mut self, pkt: Packet) -> PacketHandle {
        let Packet {
            flow,
            seq,
            src,
            dst,
            class,
            size,
            created,
            hop_limit,
            payload,
        } = pkt;
        let hot = PacketSlot {
            created,
            seq,
            flow,
            size,
            class,
        };
        let cold = ColdSlot {
            src,
            dst,
            hop_limit,
            payload,
        };
        self.live += 1;
        match self.free.pop() {
            Some(idx) => {
                self.hot[idx as usize] = hot;
                self.cold[idx as usize] = cold;
                PacketHandle {
                    idx,
                    gen: self.gens[idx as usize],
                }
            }
            None => {
                assert!(self.hot.len() < u32::MAX as usize, "packet pool overflow");
                let idx = self.hot.len() as u32;
                self.hot.push(hot);
                self.cold.push(cold);
                self.gens.push(0);
                PacketHandle { idx, gen: 0 }
            }
        }
    }

    /// Unparks a packet, reassembling it exactly as inserted. The handle
    /// (and any copy of it) is dead afterwards.
    pub fn remove(&mut self, h: PacketHandle) -> Option<Packet> {
        if !self.contains(h) {
            return None;
        }
        let i = h.idx as usize;
        self.gens[i] = self.gens[i].wrapping_add(1);
        self.free.push(h.idx);
        self.live -= 1;
        let hot = self.hot[i];
        let cold = &mut self.cold[i];
        Some(Packet {
            flow: hot.flow,
            seq: hot.seq,
            src: cold.src,
            dst: cold.dst,
            class: hot.class,
            size: hot.size,
            created: hot.created,
            hop_limit: cold.hop_limit,
            // Free the payload's heap allocations now; the slot keeps a
            // cheap placeholder until it is reused.
            payload: std::mem::replace(&mut cold.payload, Payload::Data),
        })
    }

    /// Borrows the hot row of a live packet.
    #[must_use]
    pub fn slot(&self, h: PacketHandle) -> Option<&PacketSlot> {
        if self.contains(h) {
            Some(&self.hot[h.idx as usize])
        } else {
            None
        }
    }

    /// `true` if the handle refers to a live packet.
    #[must_use]
    pub fn contains(&self, h: PacketHandle) -> bool {
        self.gens.get(h.idx as usize) == Some(&h.gen)
    }

    /// Number of live packets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` if no packets are parked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::ControlMsg;

    fn addr(n: u16) -> Ipv6Addr {
        Ipv6Addr::new(0x2001, 0xdb8, n, 0, 0, 0, 0, 1)
    }

    fn sample(seq: u64) -> Packet {
        Packet::data(
            FlowId(3),
            seq,
            addr(1),
            addr(2),
            ServiceClass::RealTime,
            160,
            SimTime::from_millis(5),
        )
    }

    #[test]
    fn round_trips_exactly() {
        let mut pool = PacketPool::new();
        let data = sample(7);
        let control = Packet::control(
            addr(1),
            addr(2),
            ControlMsg::BufferFull { pcoa: addr(3) },
            SimTime::ZERO,
        );
        let tunneled = sample(8).encapsulate(addr(9), addr(8));
        let hd = pool.insert(data.clone());
        let hc = pool.insert(control.clone());
        let ht = pool.insert(tunneled.clone());
        assert_eq!(pool.len(), 3);
        assert_eq!(pool.remove(hc), Some(control));
        assert_eq!(pool.remove(ht), Some(tunneled));
        assert_eq!(pool.remove(hd), Some(data));
        assert!(pool.is_empty());
    }

    #[test]
    fn hot_row_reflects_packet_fields() {
        let mut pool = PacketPool::new();
        let h = pool.insert(sample(42));
        let slot = pool.slot(h).unwrap();
        assert_eq!(slot.seq, 42);
        assert_eq!(slot.flow, FlowId(3));
        assert_eq!(slot.size, 160);
        assert_eq!(slot.created, SimTime::from_millis(5));
        assert_eq!(slot.effective_class(), ServiceClass::RealTime);
    }

    #[test]
    fn stale_handles_never_alias_reused_slots() {
        let mut pool = PacketPool::new();
        let stale = pool.insert(sample(1));
        assert!(pool.remove(stale).is_some());
        // The slot is recycled by the next insert; the old handle stays dead.
        let fresh = pool.insert(sample(2));
        assert_eq!(fresh.idx, stale.idx);
        assert!(!pool.contains(stale));
        assert!(pool.slot(stale).is_none());
        assert!(pool.remove(stale).is_none());
        assert_eq!(pool.slot(fresh).unwrap().seq, 2);
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn pooled_layout_stays_small() {
        // The whole point of the SoA split: hot rows pack tightly (two
        // cache lines per four slots) and handles ride in registers.
        assert!(std::mem::size_of::<PacketSlot>() <= 32);
        assert_eq!(std::mem::size_of::<PacketHandle>(), 8);
        assert_eq!(std::mem::size_of::<Option<PacketHandle>>(), 12);
    }

    use proptest::prelude::*;

    proptest! {
        /// Handle ABA safety under arbitrary insert/remove interleavings:
        /// a handle dies the moment its packet is removed and never
        /// resolves again, no matter how often its slot is recycled —
        /// including recycling that walks the generation counter across
        /// the u32::MAX -> 0 wrap. (Aliasing after a full 2^32-bump cycle
        /// of one slot is outside the contract; the pre-seeded slot-0
        /// handle below is exactly that alias, so it is not tracked.)
        #[test]
        fn stale_handles_stay_dead_under_arbitrary_reuse(
            ops in prop::collection::vec((any::<bool>(), any::<usize>()), 1..200),
            wrap_start in 0u32..4,
        ) {
            let mut pool = PacketPool::new();
            // Park slot 0's generation counter just below the wrap point
            // so recycling it during the run crosses u32::MAX.
            let h0 = pool.insert(sample(0));
            prop_assert!(pool.remove(h0).is_some());
            pool.gens[0] = u32::MAX - wrap_start;
            let mut live: Vec<(PacketHandle, u64)> = Vec::new();
            let mut dead: Vec<PacketHandle> = Vec::new();
            let mut next_seq = 1u64;
            for (is_insert, pick) in ops {
                if is_insert || live.is_empty() {
                    let h = pool.insert(sample(next_seq));
                    prop_assert!(pool.contains(h));
                    live.push((h, next_seq));
                    next_seq += 1;
                } else {
                    let (h, seq) = live.swap_remove(pick % live.len());
                    let pkt = pool.remove(h);
                    prop_assert_eq!(pkt.map(|p| p.seq), Some(seq));
                    dead.push(h);
                }
                prop_assert_eq!(pool.len(), live.len());
                for &(h, seq) in &live {
                    prop_assert_eq!(pool.slot(h).map(|s| s.seq), Some(seq));
                }
                for &h in &dead {
                    prop_assert!(!pool.contains(h), "stale handle revived after recycle");
                    prop_assert!(pool.slot(h).is_none());
                }
            }
            // remove() on a dead handle is a no-op that cannot disturb
            // the live population…
            for h in dead {
                prop_assert!(pool.remove(h).is_none());
            }
            prop_assert_eq!(pool.len(), live.len());
            // …and every live handle still reassembles its own packet.
            for (h, seq) in live {
                prop_assert_eq!(pool.remove(h).map(|p| p.seq), Some(seq));
            }
            prop_assert!(pool.is_empty());
        }
    }
}
