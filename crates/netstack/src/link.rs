//! Point-to-point duplex links with bandwidth, propagation delay and a
//! drop-tail queue.
//!
//! A link connects two nodes and carries traffic independently in each
//! direction. Transmission is serialized: each direction remembers until when
//! its transmitter is busy, so a packet handed to a busy link queues behind
//! the backlog. The queue is drop-tail with a configurable limit, estimated
//! in packets of the size currently being sent (the classic fluid
//! approximation used by packet-level simulators for FIFO links).
//!
//! # Examples
//!
//! ```
//! use fh_net::{LinkSpec, Link};
//! use fh_sim::{SimDuration, SimTime};
//!
//! let spec = LinkSpec::new(8_000_000, SimDuration::from_millis(2), 50);
//! // 1000-byte packet on 8 Mb/s: 1 ms serialization + 2 ms propagation.
//! assert_eq!(spec.tx_time(1000), SimDuration::from_millis(1));
//! ```

use fh_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::fault::{FaultSpec, FaultState, FaultVerdict};
use crate::topology::NodeId;

/// Identifies a link within a [`crate::Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(pub usize);

impl std::fmt::Display for LinkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "link{}", self.0)
    }
}

/// Static parameters of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Capacity in bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation delay.
    pub delay: SimDuration,
    /// Drop-tail queue limit, in packets waiting behind the one in service.
    pub queue_limit: usize,
}

impl LinkSpec {
    /// Creates a link specification.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bps` is zero.
    #[must_use]
    pub fn new(bandwidth_bps: u64, delay: SimDuration, queue_limit: usize) -> Self {
        assert!(bandwidth_bps > 0, "bandwidth must be positive");
        LinkSpec {
            bandwidth_bps,
            delay,
            queue_limit,
        }
    }

    /// Serialization time for `bytes` on this link, rounded up to a
    /// nanosecond (so it is never zero for a non-empty packet).
    #[must_use]
    pub fn tx_time(&self, bytes: u32) -> SimDuration {
        // Widen to u128: bits * 1e9 overflows u64 for jumbo packets on
        // kilobit-class links (e.g. 4 GiB-scale bit-counts), and saturating
        // at SimDuration::MAX is still the right answer there.
        let bits = u128::from(bytes) * 8;
        let ns = (bits * 1_000_000_000).div_ceil(u128::from(self.bandwidth_bps));
        SimDuration::from_nanos(u64::try_from(ns).unwrap_or(u64::MAX).max(1))
    }
}

/// Why a link refused a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkError {
    /// The drop-tail queue for this direction is full.
    QueueFull,
    /// The sending node is not an endpoint of this link.
    NotAttached,
    /// The fault-injection layer discarded the packet at link entry.
    Faulted,
}

impl std::fmt::Display for LinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkError::QueueFull => f.write_str("link queue full"),
            LinkError::NotAttached => f.write_str("node not attached to link"),
            LinkError::Faulted => f.write_str("packet lost to fault injection"),
        }
    }
}

impl std::error::Error for LinkError {}

/// Run-time state of one duplex link.
#[derive(Debug, Clone)]
pub struct Link {
    /// First endpoint.
    pub a: NodeId,
    /// Second endpoint.
    pub b: NodeId,
    /// Static parameters.
    pub spec: LinkSpec,
    busy_until: [SimTime; 2],
    drops: [u64; 2],
    transmitted: [u64; 2],
    fault_drops: [u32; 2],
    faults: [Option<Box<FaultState>>; 2],
    pending_dup: [Option<SimTime>; 2],
}

impl Link {
    /// Creates an idle link between `a` and `b`.
    #[must_use]
    pub fn new(a: NodeId, b: NodeId, spec: LinkSpec) -> Self {
        Link {
            a,
            b,
            spec,
            busy_until: [SimTime::ZERO; 2],
            drops: [0; 2],
            transmitted: [0; 2],
            fault_drops: [0; 2],
            faults: [None, None],
            pending_dup: [None, None],
        }
    }

    /// Fault injection: silently discard the next `n` packets sent from
    /// `from` on this link (for protocol-robustness tests — a targeted
    /// stand-in for bit errors or transient congestion).
    ///
    /// # Panics
    ///
    /// Panics if `from` is not an endpoint of this link.
    pub fn inject_drops(&mut self, from: NodeId, n: u32) {
        let dir = self.dir_from(from).expect("node attached to link");
        self.fault_drops[dir] += n;
    }

    /// Installs a seeded fault model on the `from` → peer direction.
    ///
    /// Seed per direction via [`fh_sim::derive_seed`] from the scenario seed
    /// so decisions stay independent of traffic on other links.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not an endpoint of this link.
    pub fn set_fault(&mut self, from: NodeId, spec: FaultSpec, seed: u64) {
        let dir = self.dir_from(from).expect("node attached to link");
        self.faults[dir] = if spec.is_noop() {
            None
        } else {
            Some(Box::new(FaultState::new(spec, seed)))
        };
    }

    /// The fault spec active on the `from` → peer direction, if any.
    #[must_use]
    pub fn fault_spec(&self, from: NodeId) -> Option<&FaultSpec> {
        let dir = self.dir_from(from)?;
        self.faults[dir].as_deref().map(FaultState::spec)
    }

    /// Takes the arrival time of a fault-injected duplicate of the packet
    /// most recently accepted from `from`, if the fault layer created one.
    ///
    /// Callers must drain this after every successful
    /// [`try_transmit`](Self::try_transmit) and schedule a second delivery.
    pub fn take_duplicate(&mut self, from: NodeId) -> Option<SimTime> {
        let dir = self.dir_from(from)?;
        self.pending_dup[dir].take()
    }

    /// The opposite endpoint, or `None` if `node` is not attached.
    #[must_use]
    pub fn peer(&self, node: NodeId) -> Option<NodeId> {
        if node == self.a {
            Some(self.b)
        } else if node == self.b {
            Some(self.a)
        } else {
            None
        }
    }

    fn dir_from(&self, node: NodeId) -> Option<usize> {
        if node == self.a {
            Some(0)
        } else if node == self.b {
            Some(1)
        } else {
            None
        }
    }

    /// Hands a packet of `bytes` to the link for transmission from `from`.
    ///
    /// On success returns the **arrival time** at the peer (queueing +
    /// serialization + propagation).
    ///
    /// # Errors
    ///
    /// [`LinkError::NotAttached`] if `from` is not an endpoint;
    /// [`LinkError::QueueFull`] if the drop-tail queue overflows;
    /// [`LinkError::Faulted`] if the fault layer discarded the packet.
    pub fn try_transmit(
        &mut self,
        now: SimTime,
        from: NodeId,
        bytes: u32,
    ) -> Result<SimTime, LinkError> {
        let dir = self.dir_from(from).ok_or(LinkError::NotAttached)?;
        if self.fault_drops[dir] > 0 {
            self.fault_drops[dir] -= 1;
            self.drops[dir] += 1;
            return Err(LinkError::Faulted);
        }
        let (extra_delay, duplicate) = match self.faults[dir].as_mut() {
            Some(fault) => match fault.decide(now) {
                FaultVerdict::Drop => {
                    self.drops[dir] += 1;
                    return Err(LinkError::Faulted);
                }
                FaultVerdict::Pass {
                    extra_delay,
                    duplicate,
                } => (extra_delay, duplicate),
            },
            None => (SimDuration::ZERO, false),
        };
        let tx = self.spec.tx_time(bytes);
        let backlog = self.busy_until[dir].saturating_since(now);
        // Packets currently waiting, in units of this packet's service time.
        let queued = backlog.as_nanos().div_ceil(tx.as_nanos());
        if queued > self.spec.queue_limit as u64 {
            self.drops[dir] += 1;
            return Err(LinkError::QueueFull);
        }
        let start = if self.busy_until[dir] > now {
            self.busy_until[dir]
        } else {
            now
        };
        self.busy_until[dir] = start + tx;
        self.transmitted[dir] += 1;
        let arrival = self.busy_until[dir] + self.spec.delay + extra_delay;
        if duplicate {
            // The copy serializes right behind the original if the queue
            // still has room; otherwise the duplication silently fizzles.
            let dup_backlog = self.busy_until[dir].saturating_since(now);
            if dup_backlog.as_nanos().div_ceil(tx.as_nanos()) <= self.spec.queue_limit as u64 {
                self.busy_until[dir] += tx;
                self.transmitted[dir] += 1;
                self.pending_dup[dir] = Some(self.busy_until[dir] + self.spec.delay + extra_delay);
            }
        }
        Ok(arrival)
    }

    /// Packets dropped at the queue, per direction (`[a→b, b→a]`).
    #[must_use]
    pub fn drops(&self) -> [u64; 2] {
        self.drops
    }

    /// Packets accepted for transmission, per direction (`[a→b, b→a]`).
    #[must_use]
    pub fn transmitted(&self) -> [u64; 2] {
        self.transmitted
    }

    /// When the transmitter from `node` becomes idle (`None` if detached).
    #[must_use]
    pub fn busy_until(&self, node: NodeId) -> Option<SimTime> {
        self.dir_from(node).map(|d| self.busy_until[d])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fh_sim::Simulator;

    fn nodes() -> (NodeId, NodeId, NodeId) {
        // Obtain distinct ActorIds the supported way: a scratch simulator.
        struct Nop;
        impl fh_sim::Actor<(), ()> for Nop {
            fn handle(&mut self, _: &mut fh_sim::Ctx<'_, (), ()>, _: ()) {}
        }
        let mut sim: Simulator<(), ()> = Simulator::new((), 0);
        (
            sim.add_actor(Box::new(Nop)),
            sim.add_actor(Box::new(Nop)),
            sim.add_actor(Box::new(Nop)),
        )
    }

    fn mbps(m: u64) -> u64 {
        m * 1_000_000
    }

    #[test]
    fn tx_time_math() {
        let spec = LinkSpec::new(mbps(8), SimDuration::ZERO, 10);
        assert_eq!(spec.tx_time(1000), SimDuration::from_millis(1));
        assert_eq!(spec.tx_time(0), SimDuration::from_nanos(1));
    }

    #[test]
    fn idle_link_delivers_after_tx_plus_delay() {
        let (a, b, _) = nodes();
        let mut l = Link::new(
            a,
            b,
            LinkSpec::new(mbps(8), SimDuration::from_millis(2), 10),
        );
        let arr = l.try_transmit(SimTime::ZERO, a, 1000).unwrap();
        assert_eq!(arr, SimTime::from_millis(3));
    }

    #[test]
    fn back_to_back_packets_serialize() {
        let (a, b, _) = nodes();
        let mut l = Link::new(
            a,
            b,
            LinkSpec::new(mbps(8), SimDuration::from_millis(2), 10),
        );
        let t0 = SimTime::ZERO;
        let first = l.try_transmit(t0, a, 1000).unwrap();
        let second = l.try_transmit(t0, a, 1000).unwrap();
        assert_eq!(first, SimTime::from_millis(3));
        assert_eq!(second, SimTime::from_millis(4)); // queued behind the first
    }

    #[test]
    fn directions_are_independent() {
        let (a, b, _) = nodes();
        let mut l = Link::new(
            a,
            b,
            LinkSpec::new(mbps(8), SimDuration::from_millis(2), 10),
        );
        let t0 = SimTime::ZERO;
        let ab = l.try_transmit(t0, a, 1000).unwrap();
        let ba = l.try_transmit(t0, b, 1000).unwrap();
        assert_eq!(ab, ba); // no cross-direction queueing
    }

    #[test]
    fn queue_limit_drops_tail() {
        let (a, b, _) = nodes();
        let mut l = Link::new(a, b, LinkSpec::new(mbps(8), SimDuration::ZERO, 2));
        let t0 = SimTime::ZERO;
        assert!(l.try_transmit(t0, a, 1000).is_ok()); // in service
        assert!(l.try_transmit(t0, a, 1000).is_ok()); // queued (1)
        assert!(l.try_transmit(t0, a, 1000).is_ok()); // queued (2)
        assert_eq!(l.try_transmit(t0, a, 1000), Err(LinkError::QueueFull));
        assert_eq!(l.drops(), [1, 0]);
        assert_eq!(l.transmitted(), [3, 0]);
    }

    #[test]
    fn queue_drains_over_time() {
        let (a, b, _) = nodes();
        let mut l = Link::new(a, b, LinkSpec::new(mbps(8), SimDuration::ZERO, 0));
        assert!(l.try_transmit(SimTime::ZERO, a, 1000).is_ok());
        assert!(l.try_transmit(SimTime::ZERO, a, 1000).is_err()); // zero queue
                                                                  // After the first finishes (1 ms), the link is free again.
        assert!(l.try_transmit(SimTime::from_millis(1), a, 1000).is_ok());
    }

    #[test]
    fn foreign_node_is_rejected() {
        let (a, b, c) = nodes();
        let mut l = Link::new(a, b, LinkSpec::new(mbps(1), SimDuration::ZERO, 1));
        assert_eq!(
            l.try_transmit(SimTime::ZERO, c, 100),
            Err(LinkError::NotAttached)
        );
        assert_eq!(l.peer(a), Some(b));
        assert_eq!(l.peer(b), Some(a));
        assert_eq!(l.peer(c), None);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_panics() {
        let _ = LinkSpec::new(0, SimDuration::ZERO, 1);
    }

    #[test]
    fn tx_time_survives_u64_boundary() {
        // u32::MAX bytes = ~34.4 Gbit; times 1e9 overflows u64 (~1.8e19).
        // On a 1 bit/s link the true answer saturates SimDuration::MAX.
        let slow = LinkSpec::new(1, SimDuration::ZERO, 1);
        assert_eq!(slow.tx_time(u32::MAX), SimDuration::MAX);
        // And a representable boundary case stays exact: 4 GiB at 8 Mb/s.
        let spec = LinkSpec::new(mbps(8), SimDuration::ZERO, 1);
        let bytes = u32::MAX;
        let want = (u128::from(bytes) * 8 * 1_000_000_000).div_ceil(8_000_000) as u64;
        assert_eq!(spec.tx_time(bytes), SimDuration::from_nanos(want));
    }

    #[test]
    fn counted_injected_drops_report_faulted() {
        let (a, b, _) = nodes();
        let mut l = Link::new(a, b, LinkSpec::new(mbps(8), SimDuration::ZERO, 10));
        l.inject_drops(a, 1);
        assert_eq!(
            l.try_transmit(SimTime::ZERO, a, 100),
            Err(LinkError::Faulted)
        );
        assert!(l.try_transmit(SimTime::ZERO, a, 100).is_ok());
        assert_eq!(l.drops(), [1, 0]);
    }

    #[test]
    fn full_loss_fault_drops_every_packet() {
        let (a, b, _) = nodes();
        let mut l = Link::new(a, b, LinkSpec::new(mbps(8), SimDuration::ZERO, 10));
        l.set_fault(a, crate::FaultSpec::with_loss(1.0), 7);
        for i in 0..10 {
            assert_eq!(
                l.try_transmit(SimTime::from_millis(i), a, 100),
                Err(LinkError::Faulted)
            );
        }
        assert_eq!(l.drops(), [10, 0]);
        // The reverse direction is untouched.
        assert!(l.try_transmit(SimTime::ZERO, b, 100).is_ok());
    }

    #[test]
    fn noop_fault_spec_uninstalls() {
        let (a, b, _) = nodes();
        let mut l = Link::new(a, b, LinkSpec::new(mbps(8), SimDuration::ZERO, 10));
        l.set_fault(a, crate::FaultSpec::with_loss(1.0), 7);
        assert!(l.fault_spec(a).is_some());
        l.set_fault(a, crate::FaultSpec::default(), 7);
        assert!(l.fault_spec(a).is_none());
        assert!(l.try_transmit(SimTime::ZERO, a, 100).is_ok());
    }

    #[test]
    fn duplication_schedules_a_second_arrival() {
        let (a, b, _) = nodes();
        let mut l = Link::new(
            a,
            b,
            LinkSpec::new(mbps(8), SimDuration::from_millis(2), 10),
        );
        l.set_fault(a, crate::FaultSpec::default().duplicate(1.0), 3);
        let first = l.try_transmit(SimTime::ZERO, a, 1000).unwrap();
        assert_eq!(first, SimTime::from_millis(3));
        let dup = l.take_duplicate(a).expect("duplicate scheduled");
        assert_eq!(dup, SimTime::from_millis(4)); // serialized right behind
        assert!(l.take_duplicate(a).is_none(), "duplicate is drained once");
        assert_eq!(l.transmitted(), [2, 0]);
    }

    #[test]
    fn jitter_delays_but_never_reorders_service() {
        let (a, b, _) = nodes();
        let mut l = Link::new(
            a,
            b,
            LinkSpec::new(mbps(8), SimDuration::from_millis(2), 10),
        );
        l.set_fault(
            a,
            crate::FaultSpec::default().jitter(SimDuration::from_micros(400)),
            11,
        );
        let base = SimTime::from_millis(3);
        let arr = l.try_transmit(SimTime::ZERO, a, 1000).unwrap();
        assert!(arr >= base && arr <= base + SimDuration::from_micros(400));
    }
}
