//! Simulated IPv6 packets.
//!
//! A [`Packet`] carries addressing, the class-of-service field, a byte size
//! (used for serialization-delay and throughput math — payload bytes are
//! never materialized) and a [`Payload`] describing what the packet is:
//! application data, a TCP segment, a control message, or an IPv6-in-IPv6
//! encapsulated inner packet (tunneling).
//!
//! # Examples
//!
//! ```
//! use fh_net::{Packet, Payload, ServiceClass, FlowId};
//! use fh_sim::SimTime;
//!
//! let src = "2001:db8:1::1".parse().unwrap();
//! let dst = "2001:db8:2::1".parse().unwrap();
//! let pkt = Packet::data(FlowId(1), 7, src, dst, ServiceClass::RealTime, 160, SimTime::ZERO);
//!
//! // Tunnel it from a MAP to a care-of address and back.
//! let tun = pkt.clone().encapsulate("2001:db8::abcd".parse().unwrap(), dst);
//! assert_eq!(tun.size, pkt.size + Packet::IPV6_HEADER);
//! let inner = tun.decapsulate().unwrap();
//! assert_eq!(inner.seq, 7);
//! ```

use std::net::Ipv6Addr;

use fh_sim::SimTime;
use serde::{Deserialize, Serialize};

use crate::class::ServiceClass;
use crate::msg::ControlMsg;

/// Identifies one end-to-end traffic flow (a source/sink pair).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct FlowId(pub u32);

impl std::fmt::Display for FlowId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "flow{}", self.0)
    }
}

/// Identifies one TCP connection.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ConnId(pub u32);

/// TCP segment header flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct TcpFlags {
    /// Acknowledgement number is valid.
    pub ack: bool,
    /// Connection-open segment.
    pub syn: bool,
    /// Connection-close segment.
    pub fin: bool,
}

/// The wire format of a TCP segment (behaviour lives in the `fh-tcp` crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TcpSegment {
    /// Which connection this segment belongs to.
    pub conn: ConnId,
    /// First sequence number carried (in bytes).
    pub seq: u64,
    /// Cumulative acknowledgement number (next byte expected).
    pub ack: u64,
    /// Payload length in bytes (0 for pure ACKs).
    pub len: u32,
    /// Header flags.
    pub flags: TcpFlags,
}

/// What a packet carries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Payload {
    /// Opaque application data (e.g. a CBR/UDP datagram).
    Data,
    /// A TCP segment.
    Tcp(TcpSegment),
    /// A signaling message (router advertisements, FMIPv6, HMIPv6, buffer
    /// management).
    ///
    /// Boxed: `ControlMsg` is by far the largest variant, and packets are
    /// cloned per hop through link queues and AR buffers. Keeping it behind
    /// a pointer roughly halves `size_of::<Packet>()` (see the layout
    /// regression test) so the data-plane clone path stops copying the full
    /// signaling enum.
    Control(Box<ControlMsg>),
    /// An IPv6-in-IPv6 encapsulated inner packet (tunnel).
    Encap(Box<Packet>),
}

/// A simulated IPv6 packet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Packet {
    /// End-to-end flow this packet belongs to (0 = control plane).
    pub flow: FlowId,
    /// Per-flow sequence number, assigned by the source.
    pub seq: u64,
    /// Source address.
    pub src: Ipv6Addr,
    /// Destination address.
    pub dst: Ipv6Addr,
    /// IPv6 class-of-service field (Table 3.1).
    pub class: ServiceClass,
    /// Total on-wire size in bytes (headers included).
    pub size: u32,
    /// When the source created the packet (for end-to-end delay).
    pub created: SimTime,
    /// IPv6 hop limit: decremented per forwarding hop, the packet dies at
    /// zero (the structural backstop against forwarding loops).
    pub hop_limit: u8,
    /// The packet body.
    pub payload: Payload,
}

impl Packet {
    /// Size in bytes of one IPv6 header, added per encapsulation layer.
    pub const IPV6_HEADER: u32 = 40;

    /// Default IPv6 hop limit.
    pub const DEFAULT_HOP_LIMIT: u8 = 64;

    /// Creates an application-data packet.
    #[must_use]
    pub fn data(
        flow: FlowId,
        seq: u64,
        src: Ipv6Addr,
        dst: Ipv6Addr,
        class: ServiceClass,
        size: u32,
        created: SimTime,
    ) -> Self {
        Packet {
            flow,
            seq,
            src,
            dst,
            class,
            size,
            created,
            hop_limit: Packet::DEFAULT_HOP_LIMIT,
            payload: Payload::Data,
        }
    }

    /// Creates a control-plane packet. Control packets ride in flow 0 with
    /// the high-priority class and their size follows the message's wire
    /// size.
    #[must_use]
    pub fn control(src: Ipv6Addr, dst: Ipv6Addr, msg: ControlMsg, created: SimTime) -> Self {
        let size = Packet::IPV6_HEADER + msg.wire_size();
        Packet {
            flow: FlowId(0),
            seq: 0,
            src,
            dst,
            class: ServiceClass::HighPriority,
            size,
            created,
            hop_limit: Packet::DEFAULT_HOP_LIMIT,
            payload: Payload::Control(Box::new(msg)),
        }
    }

    /// Creates a TCP packet of `seg.len` payload bytes plus headers.
    #[must_use]
    pub fn tcp(
        flow: FlowId,
        src: Ipv6Addr,
        dst: Ipv6Addr,
        class: ServiceClass,
        seg: TcpSegment,
        created: SimTime,
    ) -> Self {
        Packet {
            flow,
            seq: seg.seq,
            src,
            dst,
            class,
            size: Packet::IPV6_HEADER + 20 + seg.len,
            created,
            hop_limit: Packet::DEFAULT_HOP_LIMIT,
            payload: Payload::Tcp(seg),
        }
    }

    /// Wraps this packet in an outer IPv6 header (IPv6-in-IPv6 tunnel entry).
    ///
    /// The outer packet inherits the inner class-of-service field so
    /// class-aware treatment survives tunneling, exactly as the scheme
    /// requires on the PAR→NAR tunnel.
    #[must_use]
    pub fn encapsulate(self, tunnel_src: Ipv6Addr, tunnel_dst: Ipv6Addr) -> Packet {
        Packet {
            flow: self.flow,
            seq: self.seq,
            src: tunnel_src,
            dst: tunnel_dst,
            class: self.class,
            size: self.size + Packet::IPV6_HEADER,
            created: self.created,
            hop_limit: Packet::DEFAULT_HOP_LIMIT,
            payload: Payload::Encap(Box::new(self)),
        }
    }

    /// Unwraps one layer of tunneling. Returns `None` if this packet is not
    /// encapsulated.
    #[must_use]
    pub fn decapsulate(self) -> Option<Packet> {
        match self.payload {
            Payload::Encap(inner) => Some(*inner),
            _ => None,
        }
    }

    /// `true` if this packet is a tunnel (encapsulated) packet.
    #[must_use]
    pub fn is_encapsulated(&self) -> bool {
        matches!(self.payload, Payload::Encap(_))
    }

    /// The innermost packet, following any number of encapsulations.
    #[must_use]
    pub fn innermost(&self) -> &Packet {
        match &self.payload {
            Payload::Encap(inner) => inner.innermost(),
            _ => self,
        }
    }

    /// Borrow of the control message, if this is a control packet.
    #[must_use]
    pub fn as_control(&self) -> Option<&ControlMsg> {
        match &self.payload {
            Payload::Control(msg) => Some(msg.as_ref()),
            _ => None,
        }
    }

    /// The effective buffering class (Table 3.1: unspecified → best effort).
    #[must_use]
    pub fn effective_class(&self) -> ServiceClass {
        self.class.effective()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::ControlMsg;

    fn addr(n: u16) -> Ipv6Addr {
        Ipv6Addr::new(0x2001, 0xdb8, n, 0, 0, 0, 0, 1)
    }

    fn sample() -> Packet {
        Packet::data(
            FlowId(3),
            11,
            addr(1),
            addr(2),
            ServiceClass::HighPriority,
            160,
            SimTime::from_millis(5),
        )
    }

    #[test]
    fn encapsulation_adds_one_header_and_preserves_class() {
        let pkt = sample();
        let tun = pkt.clone().encapsulate(addr(9), addr(8));
        assert_eq!(tun.size, 200);
        assert_eq!(tun.class, ServiceClass::HighPriority);
        assert_eq!(tun.src, addr(9));
        assert_eq!(tun.dst, addr(8));
        assert!(tun.is_encapsulated());
        assert_eq!(tun.decapsulate().unwrap(), pkt);
    }

    #[test]
    fn nested_tunnels_unwrap_in_order() {
        let pkt = sample();
        let t1 = pkt.clone().encapsulate(addr(9), addr(8));
        let t2 = t1.clone().encapsulate(addr(7), addr(6));
        assert_eq!(t2.size, pkt.size + 2 * Packet::IPV6_HEADER);
        assert_eq!(t2.innermost(), &pkt);
        assert_eq!(t2.decapsulate().unwrap(), t1);
    }

    #[test]
    fn decapsulate_plain_packet_is_none() {
        assert!(sample().decapsulate().is_none());
        assert!(!sample().is_encapsulated());
        assert_eq!(sample().innermost(), &sample());
    }

    #[test]
    fn control_packets_ride_flow_zero() {
        let msg = ControlMsg::RouterSolicitation;
        let pkt = Packet::control(addr(1), addr(2), msg.clone(), SimTime::ZERO);
        assert_eq!(pkt.flow, FlowId(0));
        assert_eq!(pkt.as_control(), Some(&msg));
        assert!(pkt.size > Packet::IPV6_HEADER);
        assert!(sample().as_control().is_none());
    }

    #[test]
    fn tcp_packet_size_includes_headers() {
        let seg = TcpSegment {
            conn: ConnId(1),
            seq: 1000,
            ack: 0,
            len: 960,
            flags: TcpFlags::default(),
        };
        let pkt = Packet::tcp(
            FlowId(1),
            addr(1),
            addr(2),
            ServiceClass::BestEffort,
            seg,
            SimTime::ZERO,
        );
        assert_eq!(pkt.size, 40 + 20 + 960);
        assert_eq!(pkt.seq, 1000);
    }

    #[test]
    fn effective_class_folds_unspecified() {
        let mut pkt = sample();
        pkt.class = ServiceClass::Unspecified;
        assert_eq!(pkt.effective_class(), ServiceClass::BestEffort);
    }

    #[test]
    fn packet_layout_stays_small() {
        // Layout regression pins. Packets are cloned on every hop (link
        // queues, AR buffers, tunnels), so their size is a hot-path
        // constant. The seed laid ControlMsg (104 bytes) inline in Payload,
        // making every Packet 168 bytes; boxing the control variant brought
        // it down. Raising either bound needs a deliberate decision, not a
        // drive-by field.
        assert!(
            std::mem::size_of::<Payload>() <= 40,
            "Payload grew to {} bytes",
            std::mem::size_of::<Payload>()
        );
        assert!(
            std::mem::size_of::<Packet>() < 168,
            "Packet grew back to seed size ({} bytes)",
            std::mem::size_of::<Packet>()
        );
        assert!(
            std::mem::size_of::<Packet>() <= 104,
            "Packet grew to {} bytes",
            std::mem::size_of::<Packet>()
        );
    }
}
