//! Property tests for addressing, packets, links and routing.

use std::net::Ipv6Addr;

use fh_net::{FlowId, Link, LinkSpec, Packet, Prefix, RouteDecision, ServiceClass, Topology};
use fh_sim::{SimDuration, SimTime};
use proptest::prelude::*;

fn arb_addr() -> impl Strategy<Value = Ipv6Addr> {
    any::<u128>().prop_map(Ipv6Addr::from)
}

proptest! {
    /// A prefix always contains every host address derived from it.
    #[test]
    fn prefix_contains_its_hosts(addr in arb_addr(), len in 0u8..=64, iid in any::<u64>()) {
        let p = Prefix::new(addr, len);
        prop_assert!(p.contains(p.host(iid)));
    }

    /// Masking is idempotent: re-deriving the prefix from any member
    /// address yields the same prefix.
    #[test]
    fn prefix_mask_idempotent(addr in arb_addr(), len in 0u8..=128) {
        let p = Prefix::new(addr, len);
        let q = Prefix::new(p.base(), len);
        prop_assert_eq!(p, q);
        if len <= 64 {
            let member = p.host(0xdead_beef);
            prop_assert_eq!(Prefix::new(member, len), p);
        }
    }

    /// Longest-prefix match always prefers the more specific owner.
    #[test]
    fn lpm_prefers_specific(net in 0u16..100, host in 1u64..u64::MAX) {
        let mut topo = Topology::new();
        let coarse = topo.add_node("coarse");
        let fine = topo.add_node("fine");
        let wide = Prefix::new(Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 0), 32);
        let narrow = fh_net::doc_subnet(net);
        topo.add_prefix(wide, coarse);
        topo.add_prefix(narrow, fine);
        prop_assert_eq!(topo.owner_of(narrow.host(host)), Some(fine));
        // An address in the wide prefix but a different /48 goes coarse.
        let other = fh_net::doc_subnet(net.wrapping_add(1) % 0xffff);
        prop_assert_eq!(topo.owner_of(other.host(host)), Some(coarse));
    }

    /// Encapsulation round-trips at arbitrary nesting depth, growing by
    /// exactly one header per layer and preserving the class.
    #[test]
    fn encapsulation_round_trips(
        depth in 0usize..6,
        size in 1u32..9000,
        class_code in 0u8..4,
        seq in any::<u64>()
    ) {
        let class = ServiceClass::from_field(class_code);
        let inner = Packet::data(
            FlowId(1), seq,
            "2001:db8::1".parse().unwrap(),
            "2001:db8::2".parse().unwrap(),
            class, size, SimTime::ZERO,
        );
        let mut pkt = inner.clone();
        for i in 0..depth {
            let hop = Ipv6Addr::new(0x2001, 0xdb8, 0xff, i as u16, 0, 0, 0, 1);
            pkt = pkt.encapsulate(hop, hop);
        }
        prop_assert_eq!(pkt.size, size + depth as u32 * Packet::IPV6_HEADER);
        prop_assert_eq!(pkt.class, class);
        prop_assert_eq!(pkt.innermost(), &inner);
        for _ in 0..depth {
            pkt = pkt.decapsulate().expect("layer present");
        }
        prop_assert_eq!(pkt, inner);
    }

    /// On a random connected graph, every node can route to every
    /// advertised prefix, and following next-hops reaches the owner
    /// without loops.
    #[test]
    fn routing_reaches_every_prefix(
        n in 2usize..12,
        extra_edges in prop::collection::vec((0usize..12, 0usize..12), 0..10),
        delays in prop::collection::vec(1u64..50, 30)
    ) {
        let mut topo = Topology::new();
        let nodes: Vec<_> = (0..n).map(|i| topo.add_node(format!("n{i}"))).collect();
        let mut d = delays.iter().cycle();
        // Random tree keeps it connected…
        for i in 1..n {
            let parent = delays[i % delays.len()] as usize % i;
            topo.add_link(nodes[parent], nodes[i],
                LinkSpec::new(10_000_000, SimDuration::from_millis(*d.next().unwrap()), 50));
        }
        // …plus arbitrary extra edges.
        for (a, b) in extra_edges {
            let (a, b) = (a % n, b % n);
            if a != b {
                topo.add_link(nodes[a], nodes[b],
                    LinkSpec::new(10_000_000, SimDuration::from_millis(*d.next().unwrap()), 50));
            }
        }
        for (i, &node) in nodes.iter().enumerate() {
            topo.add_prefix(fh_net::doc_subnet(i as u16), node);
        }
        topo.compute_routes();
        for &src in &nodes {
            for (i, &dst) in nodes.iter().enumerate() {
                let addr = fh_net::doc_subnet(i as u16).host(1);
                // Follow the forwarding chain.
                let mut cur = src;
                let mut hops = 0;
                loop {
                    match topo.route(cur, addr) {
                        RouteDecision::Local => {
                            prop_assert_eq!(cur, dst);
                            break;
                        }
                        RouteDecision::Forward(link) => {
                            cur = topo.link(link).peer(cur).expect("attached");
                            hops += 1;
                            prop_assert!(hops <= n, "routing loop toward {addr}");
                        }
                        RouteDecision::Unroutable => {
                            return Err(TestCaseError::fail(format!(
                                "unroutable {addr} from {cur}"
                            )));
                        }
                    }
                }
            }
        }
    }

    /// Per-direction link arrivals are strictly increasing (serialization)
    /// and never earlier than send time + tx + propagation.
    #[test]
    fn link_serializes_each_direction(
        sends in prop::collection::vec((0u64..10_000, prop::bool::ANY, 40u32..1500), 1..100)
    ) {
        let mut topo = Topology::new();
        let a = topo.add_node("a");
        let b = topo.add_node("b");
        let spec = LinkSpec::new(8_000_000, SimDuration::from_millis(2), usize::MAX);
        let mut link = Link::new(a, b, spec);
        let mut sorted = sends.clone();
        sorted.sort_by_key(|&(t, _, _)| t);
        let mut last_arrival = [SimTime::ZERO; 2];
        for (t_us, dir_ab, bytes) in sorted {
            let now = SimTime::from_micros(t_us);
            let from = if dir_ab { a } else { b };
            let arrival = link.try_transmit(now, from, bytes).expect("unbounded queue");
            let dir = usize::from(!dir_ab);
            prop_assert!(arrival > last_arrival[dir], "arrivals must serialize");
            prop_assert!(arrival >= now + spec.tx_time(bytes) + spec.delay);
            last_arrival[dir] = arrival;
        }
    }

    /// Bounded queues never admit more backlog than the limit allows: an
    /// accepted packet's queueing delay is at most (limit+1) service times.
    #[test]
    fn drop_tail_bounds_backlog(
        limit in 0usize..10,
        count in 1usize..100
    ) {
        let mut topo = Topology::new();
        let a = topo.add_node("a");
        let b = topo.add_node("b");
        let spec = LinkSpec::new(8_000_000, SimDuration::ZERO, limit);
        let mut link = Link::new(a, b, spec);
        let now = SimTime::ZERO;
        let tx = spec.tx_time(1000);
        let mut accepted = 0u64;
        for _ in 0..count {
            if let Ok(arrival) = link.try_transmit(now, a, 1000) {
                accepted += 1;
                prop_assert!(arrival <= now + tx * (limit as u64 + 1) + spec.delay);
            }
        }
        prop_assert!(accepted <= limit as u64 + 1);
    }
}

proptest! {
    /// A packet stuck in a forwarding loop dies after at most
    /// `DEFAULT_HOP_LIMIT` transmissions instead of looping forever.
    #[test]
    fn hop_limit_kills_loops(initial in 2u8..=64) {
        use fh_net::{send_from, DropReason, NetMsg, NetStats, NetWorld, NetCtx};
        use fh_sim::{Actor, Simulator, SimTime};

        struct World {
            topo: Topology,
            stats: NetStats,
        }
        impl NetWorld for World {
            fn topology(&self) -> &Topology { &self.topo }
            fn topology_mut(&mut self) -> &mut Topology { &mut self.topo }
            fn stats(&self) -> &NetStats { &self.stats }
            fn stats_mut(&mut self) -> &mut NetStats { &mut self.stats }
        }
        /// A node that bounces every arriving packet back out (a
        /// deliberately broken router).
        struct Bouncer;
        impl Actor<NetMsg, World> for Bouncer {
            fn handle(&mut self, ctx: &mut NetCtx<'_, World>, msg: NetMsg) {
                if let NetMsg::LinkPacket { pkt, .. } = msg {
                    let me = ctx.self_id();
                    let _ = send_from(ctx, me, pkt);
                }
            }
        }
        let mut sim: Simulator<NetMsg, World> = Simulator::new(
            World { topo: Topology::new(), stats: NetStats::new() },
            1,
        );
        let a = sim.add_actor(Box::new(Bouncer));
        let b = sim.add_actor(Box::new(Bouncer));
        sim.shared.topo.register_node(a, "a");
        sim.shared.topo.register_node(b, "b");
        sim.shared.topo.add_link(a, b,
            LinkSpec::new(100_000_000, SimDuration::from_micros(10), 1000));
        // Both nodes route the same (unowned-by-them) prefix toward each
        // other is impossible with prefix routing, so own it at b and let
        // a packet destined *elsewhere* ping-pong: simplest loop — address
        // owned by b, but b also forwards (Bouncer ignores Local handling
        // by re-sending). Instead: dst owned by neither is unroutable; so
        // craft the loop by owning the prefix at b and having b resend.
        sim.shared.topo.add_prefix(fh_net::doc_subnet(7), b);
        sim.shared.topo.compute_routes();
        let mut pkt = fh_net::Packet::data(
            FlowId(1), 0,
            fh_net::doc_subnet(0).host(1),
            fh_net::doc_subnet(7).host(1),
            ServiceClass::BestEffort, 100, SimTime::ZERO,
        );
        pkt.hop_limit = initial;
        sim.schedule(SimTime::ZERO, a, NetMsg::LinkPacket { link: fh_net::LinkId(0), pkt });
        sim.set_event_limit(100_000);
        let events = sim.run();
        prop_assert!(events < 100_000, "the loop must terminate on its own");
        // b treats the packet as Local and re-sends it; a forwards it back.
        // Every a→b trip costs one hop: bounded by the initial hop limit.
        prop_assert!(sim.shared.stats.drops(DropReason::HopLimitExceeded) <= 1);
    }
}
