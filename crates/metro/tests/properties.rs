//! Property tests for the sharded metro kernel.
//!
//! Two invariants carry the whole design:
//!
//! 1. **Epoch safety.** No cross-domain message may arrive inside the
//!    epoch that sent it — the epoch executor *asserts* `arrival >=
//!    epoch_end` at every barrier and panics on a violation, so every
//!    green random run below is a proof over that topology and traffic
//!    that the boundary latency really is a conservative lookahead.
//! 2. **Schedule independence.** The sequential execution (one worker
//!    walking the shards) and the sharded one (many workers) must
//!    produce byte-identical artifacts and identical tallies.

use fh_core::Scheme;
use fh_metro::{run, MetroConfig};
use fh_sim::{SimDuration, SimTime};
use proptest::prelude::*;

fn arb_scheme() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        Just(Scheme::NoBuffer),
        Just(Scheme::NarOnly),
        Just(Scheme::ParOnly),
        Just(Scheme::Dual { classify: false }),
        Just(Scheme::Dual { classify: true }),
    ]
}

/// A random but valid metro deployment, kept small enough that a case
/// runs in milliseconds: up to 5 domains, up to 120 hosts, a boundary
/// latency from 1 to 20 ms, and a horizon of 1.2 simulated seconds.
fn arb_config() -> impl Strategy<Value = MetroConfig> {
    (
        (1u32..6, 1u32..121),
        (1u64..21, 0.0..0.6f64),
        (20u64..300, 200u64..1200),
        arb_scheme(),
        (1u32..33, 5u64..60),
    )
        .prop_map(
            |(
                (domains, hosts),
                (latency_ms, remote),
                (blackout_ms, residence_ms),
                scheme,
                (req, interval_ms),
            )| {
                MetroConfig {
                    domains,
                    hosts,
                    boundary_latency: SimDuration::from_millis(latency_ms),
                    remote_fraction: remote,
                    blackout: SimDuration::from_millis(blackout_ms),
                    mean_residence: SimDuration::from_millis(residence_ms),
                    scheme,
                    buffer_request: req,
                    packet_interval: SimDuration::from_millis(interval_ms),
                    traffic_start: SimTime::from_millis(50),
                    traffic_stop: SimTime::from_millis(900),
                    horizon: SimTime::from_millis(1_200),
                    ..MetroConfig::default()
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Epoch safety over random topologies and traffic: the run
    /// completes (the barrier assert never fires), every boundary
    /// packet sent is received, and the packet-conservation equation
    /// balances in every class.
    #[test]
    fn random_deployments_respect_the_lookahead(cfg in arb_config()) {
        let r = run(&cfg, 4);
        let rx: u64 = r.domains.iter().map(|d| d.boundary_rx.0).sum();
        prop_assert_eq!(rx, r.boundary_packets, "every crossing is received");
        prop_assert_eq!(r.report.messages, r.boundary_packets);
        prop_assert!(
            r.counts.conservation_violations().is_empty(),
            "conservation: {:?}", r.counts.conservation_violations()
        );
        prop_assert!(r.leak_clean, "every domain pool must drain");
        if cfg.domains == 1 {
            prop_assert_eq!(r.boundary_packets, 0);
        }
    }

    /// Sequential vs sharded execution: identical artifacts, tallies
    /// and registries at every thread count tried.
    #[test]
    fn sequential_and_sharded_runs_are_identical(cfg in arb_config()) {
        let seq = run(&cfg, 1);
        let par = run(&cfg, 8);
        prop_assert_eq!(seq.artifact(), par.artifact());
        prop_assert_eq!(seq.counts, par.counts);
        prop_assert_eq!(seq.events_processed, par.events_processed);
        prop_assert_eq!(seq.handovers, par.handovers);
        prop_assert_eq!(
            seq.registry.counter_value("metro.events"),
            par.registry.counter_value("metro.events")
        );
    }
}
