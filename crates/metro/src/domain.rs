//! One MAP domain as a shard of the metro kernel.
//!
//! A [`Domain`] is a self-contained discrete-event loop over the hosts
//! homed in it: it owns its event queue, its RNG lineage (derived with
//! the domain salt so it can never collide with sweep-point or
//! fault-link streams), its [`PacketPool`], and its counters. The only
//! way anything enters or leaves is the epoch executor's mailbox — a
//! [`CrossPacket`] carries the few hot fields a packet needs to survive
//! the crossing (pools are per-domain, so handles cannot travel).
//!
//! The event loop is deliberately leaner than the full protocol fabric:
//! metro-scale runs trade per-packet protocol fidelity for host count,
//! keeping exactly the behaviours the buffer-management comparison
//! needs — blackout windows, per-scheme admission (cap, dual cap,
//! class-aware eviction), paced flush, and per-class delay accounting.

use std::collections::VecDeque;

use fh_core::Scheme;
use fh_net::{doc_subnet, FlowId, Packet, PacketPool, ServiceClass};
use fh_sim::stats::Histogram;
use fh_sim::{derive_domain_seed, EventQueue, Outbox, Rng64, ShardState, SimDuration, SimTime};

use crate::MetroConfig;

/// Flow classes in F1–F3 order, shared with the scenario layer.
pub const CLASSES: [ServiceClass; 3] = [
    ServiceClass::RealTime,
    ServiceClass::HighPriority,
    ServiceClass::BestEffort,
];

/// Short class labels for artifact columns, in F1–F3 order.
pub const CLASS_LABELS: [&str; 3] = ["rt", "hp", "be"];

/// Fixed access-network latency between a domain's wired side and a
/// host's radio — the floor every delivered packet pays.
pub const ACCESS_LATENCY: SimDuration = SimDuration::from_millis(2);

/// Extra forwarding delay the PAR-only scheme pays per flush: buffered
/// packets sit one router further from the new attachment point, so the
/// smooth-handover draft re-tunnels them across the inter-AR path.
pub const PAR_FORWARD_DELAY: SimDuration = SimDuration::from_millis(8);

/// Upper edge of the per-class delay histograms, in milliseconds.
const DELAY_HI_MS: f64 = 2_000.0;
/// Bin count of the per-class delay histograms (1 ms bins).
const DELAY_BINS: usize = 2_000;

/// A packet in flight between domains: the hot fields only, because
/// pools — and therefore handles — do not cross shard boundaries.
#[derive(Debug, Clone, Copy)]
pub struct CrossPacket {
    /// Destination host (global index).
    pub host: u32,
    /// Flow class index (0..3, F1–F3).
    pub class: u8,
    /// On-wire size in bytes.
    pub size: u32,
    /// Per-flow sequence number.
    pub seq: u64,
    /// When the correspondent created the packet.
    pub created: SimTime,
}

/// The per-domain event vocabulary.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// The correspondent of `host` emits its next packet. Scheduled in
    /// the *source* domain (the home domain for local flows, the
    /// correspondent domain for remote ones).
    Gen { host: u32 },
    /// A packet reaches `host`'s home domain and meets the buffer
    /// scheme (or the host directly).
    Arrive(CrossPacket),
    /// `host` begins a handover: radio goes dark.
    HandoverStart { host: u32 },
    /// `host` completes attachment: flush whatever was buffered.
    HandoverEnd { host: u32 },
    /// A flushed packet, re-paced by the flush spacing, reaches its
    /// host.
    Deliver { class: u8, created: SimTime },
}

/// Per-class deterministic tallies of one domain (or, summed, a run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassCounts {
    /// Packets generated.
    pub generated: [u64; 3],
    /// Packets delivered to their host.
    pub delivered: [u64; 3],
    /// Dropped during a blackout with no buffer (or no admission).
    pub dropped_blackout: [u64; 3],
    /// Dropped because the scheme's buffer cap was reached.
    pub dropped_overflow: [u64; 3],
    /// Best-effort packets evicted by the class-aware matrix to admit
    /// higher classes.
    pub dropped_evicted: [u64; 3],
    /// Still queued or parked when the horizon fell.
    pub dropped_horizon: [u64; 3],
}

impl ClassCounts {
    /// Adds another tally into this one.
    pub fn absorb(&mut self, other: &ClassCounts) {
        for k in 0..3 {
            self.generated[k] += other.generated[k];
            self.delivered[k] += other.delivered[k];
            self.dropped_blackout[k] += other.dropped_blackout[k];
            self.dropped_overflow[k] += other.dropped_overflow[k];
            self.dropped_evicted[k] += other.dropped_evicted[k];
            self.dropped_horizon[k] += other.dropped_horizon[k];
        }
    }

    /// All drops of class `k`, every reason combined.
    #[must_use]
    pub fn drops(&self, k: usize) -> u64 {
        self.dropped_blackout[k]
            + self.dropped_overflow[k]
            + self.dropped_evicted[k]
            + self.dropped_horizon[k]
    }

    /// Conservation violations: one message per class whose equation
    /// `generated == delivered + drops` does not balance.
    #[must_use]
    pub fn conservation_violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (k, label) in CLASS_LABELS.iter().enumerate() {
            let accounted = self.delivered[k] + self.drops(k);
            if self.generated[k] != accounted {
                out.push(format!(
                    "class {label}: generated {} != accounted {} (delivered {} + drops {})",
                    self.generated[k],
                    accounted,
                    self.delivered[k],
                    self.drops(k),
                ));
            }
        }
        out
    }
}

/// The mutable per-host state a domain tracks.
#[derive(Debug, Clone, Default)]
struct HostState {
    /// Radio dark (handover in progress).
    blackout: bool,
    /// Parked packets, oldest first, as pool handles.
    buffer: VecDeque<fh_net::PacketHandle>,
    /// Next per-flow sequence number.
    next_seq: u64,
    /// Current access router within the domain (cosmetic rotation).
    ar: u32,
}

/// One MAP domain: an independent shard of the metro simulation.
#[derive(Debug)]
pub struct Domain {
    /// This domain's index (== its shard index).
    pub index: u32,
    cfg: MetroConfig,
    queue: EventQueue<Ev>,
    rng: Rng64,
    pool: PacketPool,
    hosts: Vec<u32>,
    /// Dense per-host state, indexed by position in `hosts`.
    state: Vec<HostState>,
    /// Global host index → dense slot, for hosts homed here.
    slot_of: std::collections::HashMap<u32, u32>,
    /// Per-flow sequence counters for remote flows sourced here (their
    /// hosts are homed elsewhere, so they have no dense slot).
    remote_counters: std::collections::HashMap<u32, u64>,
    now: SimTime,
    /// Deterministic tallies.
    pub counts: ClassCounts,
    /// Per-class delivered-delay histograms (milliseconds).
    pub delay: [Histogram; 3],
    /// Events popped from this domain's queue.
    pub events_processed: u64,
    /// Handovers started by hosts homed here.
    pub handovers: u64,
    /// Packets / bytes this domain pushed across a boundary.
    pub boundary_tx: (u64, u64),
    /// Packets / bytes this domain received across a boundary.
    pub boundary_rx: (u64, u64),
}

impl Domain {
    /// Builds domain `index` of a metro deployment and seeds its event
    /// queue: one generator chain per flow sourced here, one handover
    /// chain per host homed here.
    #[must_use]
    pub fn new(index: u32, cfg: &MetroConfig) -> Self {
        let mut d = Domain {
            index,
            cfg: cfg.clone(),
            queue: EventQueue::new(),
            rng: Rng64::seed_from(derive_domain_seed(cfg.seed, index)),
            pool: PacketPool::new(),
            hosts: Vec::new(),
            state: Vec::new(),
            slot_of: std::collections::HashMap::new(),
            remote_counters: std::collections::HashMap::new(),
            now: SimTime::ZERO,
            counts: ClassCounts::default(),
            delay: [
                Histogram::new(0.0, DELAY_HI_MS, DELAY_BINS),
                Histogram::new(0.0, DELAY_HI_MS, DELAY_BINS),
                Histogram::new(0.0, DELAY_HI_MS, DELAY_BINS),
            ],
            events_processed: 0,
            handovers: 0,
            boundary_tx: (0, 0),
            boundary_rx: (0, 0),
        };
        for host in 0..cfg.hosts {
            if cfg.home_domain(host) == index {
                let slot = d.hosts.len() as u32;
                d.hosts.push(host);
                d.state.push(HostState::default());
                d.slot_of.insert(host, slot);
                // First residence interval, drawn from this domain's
                // stream in host order (deterministic).
                let residence = d.residence();
                if let Some(t) = SimTime::ZERO.checked_add(residence) {
                    if t < cfg.horizon {
                        d.queue.push(t, Ev::HandoverStart { host });
                    }
                }
            }
            if cfg.source_domain(host) == index {
                // Stagger first emissions so 100k hosts don't fire on
                // the same nanosecond.
                let phase = cfg.packet_interval * u64::from(host % 128) / 128;
                d.queue.push(cfg.traffic_start + phase, Ev::Gen { host });
            }
        }
        d
    }

    /// Number of hosts homed in this domain.
    #[must_use]
    pub fn homed_hosts(&self) -> u32 {
        self.hosts.len() as u32
    }

    /// Exponential residence time from this domain's RNG, floored at
    /// 1 ms so a pathological draw cannot wedge a host in a
    /// zero-length dwell loop.
    fn residence(&mut self) -> SimDuration {
        let ms = self
            .rng
            .gen_exp(self.cfg.mean_residence.as_millis_f64())
            .max(1.0);
        SimDuration::from_nanos((ms * 1e6) as u64)
    }

    /// The scheme's buffer cap per handover, in packets.
    fn buffer_cap(&self) -> usize {
        match self.cfg.scheme {
            Scheme::NoBuffer => 0,
            // SafetyNet parks its insurance copies at the NAR only, so
            // its cap matches the single-router schemes.
            Scheme::NarOnly | Scheme::ParOnly | Scheme::SafetyNet => {
                self.cfg.buffer_request as usize
            }
            // The proposed scheme aggregates both routers' reservations.
            Scheme::Dual { .. } => 2 * self.cfg.buffer_request as usize,
        }
    }

    fn deliver(&mut self, class: u8, created: SimTime) {
        let k = class as usize;
        self.counts.delivered[k] += 1;
        let delay_ms = self.now.saturating_since(created).as_millis_f64();
        self.delay[k].add(delay_ms);
    }

    /// A packet meets its host: delivered directly, parked, or dropped
    /// per the scheme's admission matrix.
    fn arrive(&mut self, cp: CrossPacket) {
        let slot = self.slot_of[&cp.host] as usize;
        if !self.state[slot].blackout {
            self.deliver(cp.class, cp.created);
            return;
        }
        let cap = self.buffer_cap();
        let k = cp.class as usize;
        if cap == 0 {
            self.counts.dropped_blackout[k] += 1;
            return;
        }
        if self.state[slot].buffer.len() < cap {
            self.park(slot, cp);
            return;
        }
        // Full. The class-aware matrix sacrifices the oldest parked
        // best-effort packet to admit real-time / high-priority traffic.
        if self.cfg.scheme.classifies() && CLASSES[k] != ServiceClass::BestEffort {
            let be_pos = self.state[slot].buffer.iter().position(|&h| {
                self.pool
                    .slot(h)
                    .is_some_and(|s| s.effective_class() == ServiceClass::BestEffort)
            });
            if let Some(pos) = be_pos {
                let victim = self.state[slot].buffer.remove(pos).expect("position valid");
                self.pool.remove(victim);
                self.counts.dropped_evicted[2] += 1;
                self.park(slot, cp);
                return;
            }
        }
        self.counts.dropped_overflow[k] += 1;
    }

    /// Parks one packet in the pool and the host's FIFO.
    fn park(&mut self, slot: usize, cp: CrossPacket) {
        let host = self.hosts[slot];
        let pkt = Packet::data(
            FlowId(host),
            cp.seq,
            doc_subnet(self.cfg.source_domain(host) as u16).host(u64::from(host) + 1),
            doc_subnet(self.index as u16).host(u64::from(host) + 1),
            CLASSES[cp.class as usize],
            cp.size,
            cp.created,
        );
        let handle = self.pool.insert(pkt);
        self.state[slot].buffer.push_back(handle);
    }

    fn handle(&mut self, ev: Ev, outbox: &mut Outbox<CrossPacket>) {
        match ev {
            Ev::Gen { host } => {
                if self.now >= self.cfg.traffic_stop {
                    return; // chain ends; no reschedule
                }
                let home = self.cfg.home_domain(host);
                let slot_ref = self.slot_of.get(&host).copied();
                let seq = if home == self.index {
                    let s = slot_ref.expect("local flow host homed here") as usize;
                    let seq = self.state[s].next_seq;
                    self.state[s].next_seq += 1;
                    seq
                } else {
                    // Remote flow: the correspondent keeps its own count.
                    self.remote_seq(host)
                };
                let class = (host % 3) as u8;
                self.counts.generated[class as usize] += 1;
                let cp = CrossPacket {
                    host,
                    class,
                    size: self.cfg.packet_bytes,
                    seq,
                    created: self.now,
                };
                if home == self.index {
                    self.queue.push(self.now + ACCESS_LATENCY, Ev::Arrive(cp));
                } else {
                    self.boundary_tx.0 += 1;
                    self.boundary_tx.1 += u64::from(cp.size);
                    outbox.send(home as usize, self.now + self.cfg.boundary_latency, cp);
                }
                self.queue
                    .push(self.now + self.cfg.packet_interval, Ev::Gen { host });
            }
            Ev::Arrive(cp) => self.arrive(cp),
            Ev::HandoverStart { host } => {
                let slot = self.slot_of[&host] as usize;
                self.state[slot].blackout = true;
                self.state[slot].ar = (self.state[slot].ar + 1) % self.cfg.ars_per_domain.max(1);
                self.handovers += 1;
                self.queue
                    .push(self.now + self.cfg.blackout, Ev::HandoverEnd { host });
            }
            Ev::HandoverEnd { host } => {
                let slot = self.slot_of[&host] as usize;
                self.state[slot].blackout = false;
                // Flush, oldest first, paced by the flush spacing; the
                // PAR-only draft pays the inter-AR re-tunnel on top.
                let extra = if self.cfg.scheme == Scheme::ParOnly {
                    PAR_FORWARD_DELAY
                } else {
                    SimDuration::ZERO
                };
                let mut i = 0u64;
                while let Some(handle) = self.state[slot].buffer.pop_front() {
                    let pkt = self.pool.remove(handle).expect("parked handle is live");
                    let class = CLASSES
                        .iter()
                        .position(|&c| c == pkt.effective_class())
                        .unwrap_or(2) as u8;
                    let t = self.now + extra + self.cfg.flush_spacing * i;
                    self.queue.push(
                        t,
                        Ev::Deliver {
                            class,
                            created: pkt.created,
                        },
                    );
                    i += 1;
                }
                // Next dwell.
                let residence = self.residence();
                if let Some(t) = self.now.checked_add(residence) {
                    if t < self.cfg.horizon {
                        self.queue.push(t, Ev::HandoverStart { host });
                    }
                }
            }
            Ev::Deliver { class, created } => self.deliver(class, created),
        }
    }

    /// Deterministic per-packet sequence for remote flows (the
    /// correspondent domain does not track the host's state densely).
    fn remote_seq(&mut self, host: u32) -> u64 {
        // A per-host monotonic counter kept in the same map the home
        // domain uses for slots would collide; remote flows instead use
        // the generation count the artifact never depends on per-packet.
        let e = self.remote_counters.entry(host).or_insert(0);
        let v = *e;
        *e += 1;
        v
    }

    /// Drains everything still queued or parked after the horizon and
    /// books it as horizon drops, making conservation exact. Returns
    /// `true` if the pool came back empty (leak-clean).
    pub fn finalize(&mut self) -> bool {
        while let Some((_, ev)) = self.queue.pop() {
            match ev {
                Ev::Arrive(cp) => self.counts.dropped_horizon[cp.class as usize] += 1,
                Ev::Deliver { class, .. } => {
                    self.counts.dropped_horizon[class as usize] += 1;
                }
                Ev::Gen { .. } | Ev::HandoverStart { .. } | Ev::HandoverEnd { .. } => {}
            }
        }
        for slot in 0..self.state.len() {
            while let Some(handle) = self.state[slot].buffer.pop_front() {
                let pkt = self.pool.remove(handle).expect("parked handle is live");
                let k = CLASSES
                    .iter()
                    .position(|&c| c == pkt.effective_class())
                    .unwrap_or(2);
                self.counts.dropped_horizon[k] += 1;
            }
        }
        self.pool.is_empty()
    }
}

impl ShardState for Domain {
    type Msg = CrossPacket;

    fn accept(&mut self, arrival: SimTime, msg: CrossPacket) {
        self.boundary_rx.0 += 1;
        self.boundary_rx.1 += u64::from(msg.size);
        self.queue.push(arrival, Ev::Arrive(msg));
    }

    fn advance(&mut self, horizon: SimTime, outbox: &mut Outbox<CrossPacket>) {
        while let Some(t) = self.queue.peek_time() {
            if t >= horizon {
                break;
            }
            let (t, ev) = self.queue.pop().expect("peeked event exists");
            self.now = t;
            self.events_processed += 1;
            self.handle(ev, outbox);
        }
        self.now = horizon;
    }

    fn next_event_time(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }
}
