//! # fh-metro — the sharded multi-domain (metro-scale) simulation kernel
//!
//! The paper's evaluation is one MAP, a handful of ARs and single-digit
//! hosts; the deployments the buffer-management scheme is *for* are
//! hierarchical HMIPv6 metros: many MAP domains, tens of thousands of
//! mobile hosts. This crate is the kernel for that scale. It partitions
//! one simulation by MAP domain — each [`domain::Domain`] owns its own
//! event queue, RNG lineage ([`fh_sim::derive_domain_seed`]), packet
//! pool and counters — and advances all domains in lock-stepped epochs
//! under [`fh_sim::shard::run_epochs`], with the fixed latency of the
//! inter-MAP [`fh_net::BoundaryLink`]s as the conservative lookahead.
//!
//! The result is the repo's first *intra-run* parallelism, under the
//! same contract as everything else: **byte-identical output at any
//! thread count**. Within an epoch, shards share nothing; at the epoch
//! barrier, mailboxes drain in (source domain, send order) order; the
//! merged registry is folded in domain-index order. No step depends on
//! which worker ran what.
//!
//! ```
//! use fh_metro::{run, MetroConfig};
//!
//! let cfg = MetroConfig { hosts: 60, domains: 3, ..MetroConfig::default() };
//! let a = run(&cfg, 1); // sequential
//! let b = run(&cfg, 4); // sharded across 4 workers
//! assert_eq!(a.artifact(), b.artifact());
//! assert!(a.counts.conservation_violations().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod domain;

use std::time::Duration;

use fh_core::Scheme;
use fh_net::BoundaryFabric;
use fh_sim::shard::{run_epochs, EpochReport};
use fh_sim::stats::Histogram;
use fh_sim::{derive_seed, SimDuration, SimTime};
use fh_telemetry::{Cell, CsvTable, MetricsRegistry};

pub use domain::{ClassCounts, CrossPacket, Domain, CLASSES, CLASS_LABELS};

/// Everything a metro run needs, with the paper-informed defaults the
/// scenario layer overrides from `[topology.domains]`.
#[derive(Debug, Clone, PartialEq)]
pub struct MetroConfig {
    /// Number of MAP domains (shards). 1 reproduces the single-queue
    /// kernel exactly — no barriers, no boundaries.
    pub domains: u32,
    /// Total mobile hosts, homed round-robin across domains.
    pub hosts: u32,
    /// Access routers per domain (hosts rotate between them on
    /// handover).
    pub ars_per_domain: u32,
    /// One-way latency of every inter-MAP boundary link. Its minimum is
    /// the conservative lookahead; must be positive when `domains > 1`.
    pub boundary_latency: SimDuration,
    /// Fraction of hosts whose correspondent lives in another domain
    /// (their traffic crosses a boundary).
    pub remote_fraction: f64,
    /// Mean of the exponential dwell time between handovers.
    pub mean_residence: SimDuration,
    /// Radio-dark window of each handover.
    pub blackout: SimDuration,
    /// Buffer-management scheme under test.
    pub scheme: Scheme,
    /// Per-handover buffer reservation, in packets (the thesis' `N`).
    pub buffer_request: u32,
    /// Pacing between packets of a post-handover flush.
    pub flush_spacing: SimDuration,
    /// CBR inter-packet interval per host flow.
    pub packet_interval: SimDuration,
    /// On-wire packet size in bytes.
    pub packet_bytes: u32,
    /// Traffic window start.
    pub traffic_start: SimTime,
    /// Traffic window end (generator chains stop here).
    pub traffic_stop: SimTime,
    /// Simulation horizon.
    pub horizon: SimTime,
    /// Base seed; per-domain streams derive through the domain salt.
    pub seed: u64,
}

impl Default for MetroConfig {
    fn default() -> Self {
        MetroConfig {
            domains: 4,
            hosts: 1_000,
            ars_per_domain: 4,
            boundary_latency: SimDuration::from_millis(8),
            remote_fraction: 0.2,
            mean_residence: SimDuration::from_secs(4),
            blackout: SimDuration::from_millis(120),
            scheme: Scheme::PROPOSED,
            buffer_request: 20,
            flush_spacing: SimDuration::from_micros(200),
            packet_interval: SimDuration::from_millis(40),
            packet_bytes: 160,
            traffic_start: SimTime::from_millis(200),
            traffic_stop: SimTime::from_secs(4),
            horizon: SimTime::from_secs(5),
            seed: 7,
        }
    }
}

impl MetroConfig {
    /// The domain a host is homed in (round-robin).
    #[must_use]
    pub fn home_domain(&self, host: u32) -> u32 {
        host % self.domains.max(1)
    }

    /// `true` if the host's correspondent lives in another domain.
    ///
    /// Decided by a seed-independent hash of the host index against the
    /// remote fraction, so the remote population is a stable property
    /// of the topology, not of the RNG lineage.
    #[must_use]
    pub fn is_remote(&self, host: u32) -> bool {
        if self.domains < 2 {
            return false;
        }
        let h = derive_seed(0x4D45_5452_4F00, u64::from(host));
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < self.remote_fraction
    }

    /// The domain that *generates* the host's traffic: home for local
    /// flows, a deterministic correspondent domain for remote ones.
    #[must_use]
    pub fn source_domain(&self, host: u32) -> u32 {
        let home = self.home_domain(host);
        if !self.is_remote(host) {
            return home;
        }
        let spread = derive_seed(0x434F_5252, u64::from(host)) % u64::from(self.domains - 1);
        (home + 1 + spread as u32) % self.domains
    }

    /// The boundary fabric this deployment implies: a full mesh over
    /// the domains at the configured latency (empty for one domain).
    #[must_use]
    pub fn fabric(&self) -> BoundaryFabric {
        if self.domains < 2 {
            return BoundaryFabric::new();
        }
        BoundaryFabric::full_mesh(self.domains, self.boundary_latency)
    }
}

/// Deterministic per-domain roll-up, reported in domain-index order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainSummary {
    /// Domain index.
    pub index: u32,
    /// Hosts homed in the domain.
    pub hosts: u32,
    /// Events its queue processed.
    pub events: u64,
    /// Handovers its hosts started.
    pub handovers: u64,
    /// Its deterministic tallies.
    pub counts: ClassCounts,
    /// Packets / bytes pushed across boundaries.
    pub boundary_tx: (u64, u64),
    /// Packets / bytes received across boundaries.
    pub boundary_rx: (u64, u64),
}

/// Everything a metro run produces.
///
/// Split into the *deterministic* part (counts, histograms, registry,
/// the rendered [`MetroResults::artifact`]) — byte-identical at any
/// thread count — and the *measured* part (wall-clock, epoch timing
/// decomposition) that only the bench layer reports.
#[derive(Debug)]
pub struct MetroResults {
    /// Tallies summed over all domains.
    pub counts: ClassCounts,
    /// Per-class delay histograms merged over all domains (ms).
    pub delay: [Histogram; 3],
    /// Events processed, all domains.
    pub events_processed: u64,
    /// Handovers started, all domains.
    pub handovers: u64,
    /// Cross-boundary packets (each counted once, at the sender).
    pub boundary_packets: u64,
    /// Cross-boundary bytes (each counted once, at the sender).
    pub boundary_bytes: u64,
    /// `true` when every domain's pool drained to empty.
    pub leak_clean: bool,
    /// Per-domain roll-ups, domain-index order.
    pub domains: Vec<DomainSummary>,
    /// Per-domain registries merged in domain-index order.
    pub registry: MetricsRegistry,
    /// Epoch executor accounting (barriers, messages, busy/critical
    /// time). Measured, not deterministic.
    pub report: EpochReport,
    /// Wall-clock of the epoch execution (excludes build + finalize).
    pub elapsed: Duration,
}

impl MetroResults {
    /// Worst-case per-class p99 delay in milliseconds (0 when a class
    /// delivered nothing).
    #[must_use]
    pub fn class_p99_ms(&self) -> [f64; 3] {
        let mut out = [0.0; 3];
        for (o, d) in out.iter_mut().zip(&self.delay) {
            *o = d.quantile(0.99).unwrap_or(0.0);
        }
        out
    }

    /// Renders the deterministic artifact: one CSV row per domain plus
    /// a `total` row. Contains **no timing** — every cell is a function
    /// of the simulated world alone, so the bytes are identical at any
    /// thread count and lockable by FNV hash.
    #[must_use]
    pub fn artifact(&self) -> String {
        let mut t = CsvTable::new(&[
            "domain",
            "hosts",
            "events",
            "handovers",
            "generated",
            "delivered",
            "drop_rt",
            "drop_hp",
            "drop_be",
            "boundary_tx_pkts",
            "boundary_rx_pkts",
            "p99_rt_ms",
            "p99_hp_ms",
            "p99_be_ms",
        ]);
        for d in &self.domains {
            t.row(&[
                Cell::U64(u64::from(d.index)),
                Cell::U64(u64::from(d.hosts)),
                Cell::U64(d.events),
                Cell::U64(d.handovers),
                Cell::U64(d.counts.generated.iter().sum()),
                Cell::U64(d.counts.delivered.iter().sum()),
                Cell::U64(d.counts.drops(0)),
                Cell::U64(d.counts.drops(1)),
                Cell::U64(d.counts.drops(2)),
                Cell::U64(d.boundary_tx.0),
                Cell::U64(d.boundary_rx.0),
                Cell::Empty,
                Cell::Empty,
                Cell::Empty,
            ]);
        }
        let p99 = self.class_p99_ms();
        t.row(&[
            Cell::Str("total"),
            Cell::U64(self.domains.iter().map(|d| u64::from(d.hosts)).sum()),
            Cell::U64(self.events_processed),
            Cell::U64(self.handovers),
            Cell::U64(self.counts.generated.iter().sum()),
            Cell::U64(self.counts.delivered.iter().sum()),
            Cell::U64(self.counts.drops(0)),
            Cell::U64(self.counts.drops(1)),
            Cell::U64(self.counts.drops(2)),
            Cell::U64(self.boundary_packets),
            Cell::U64(self.boundary_packets),
            Cell::Fixed(p99[0], 3),
            Cell::Fixed(p99[1], 3),
            Cell::Fixed(p99[2], 3),
        ]);
        t.finish()
    }
}

/// Builds one registry from a finalized domain's counters, under the
/// shared `metro.*` names so the domain-order merge folds them.
fn domain_registry(d: &Domain) -> MetricsRegistry {
    let mut r = MetricsRegistry::default();
    for (k, label) in CLASS_LABELS.iter().enumerate() {
        let id = r.counter(&format!("metro.generated.{label}"));
        r.add(id, d.counts.generated[k]);
        let id = r.counter(&format!("metro.delivered.{label}"));
        r.add(id, d.counts.delivered[k]);
        let id = r.counter(&format!("metro.drop.{label}"));
        r.add(id, d.counts.drops(k));
    }
    let id = r.counter("metro.handover.count");
    r.add(id, d.handovers);
    let id = r.counter("metro.boundary.tx_pkts");
    r.add(id, d.boundary_tx.0);
    let id = r.counter("metro.boundary.tx_bytes");
    r.add(id, d.boundary_tx.1);
    let id = r.counter("metro.events");
    r.add(id, d.events_processed);
    r
}

/// Runs one metro deployment to its horizon on up to `threads` workers.
///
/// Determinism contract: for a fixed config, the deterministic half of
/// the [`MetroResults`] is byte-identical at any `threads` value.
///
/// # Panics
///
/// Panics if `domains == 0`, or if `domains > 1` with a zero boundary
/// latency (no conservative lookahead exists). The scenario layer
/// rejects both with pointed file errors before getting here.
#[must_use]
pub fn run(cfg: &MetroConfig, threads: usize) -> MetroResults {
    assert!(
        cfg.domains > 0,
        "a metro deployment needs at least one domain"
    );
    assert!(
        cfg.domains == 1 || !cfg.boundary_latency.is_zero(),
        "boundary latency must be > 0 when domains > 1 (it is the lookahead)"
    );
    let mut domains: Vec<Domain> = (0..cfg.domains).map(|i| Domain::new(i, cfg)).collect();
    let start = std::time::Instant::now();
    let report = run_epochs(&mut domains, cfg.boundary_latency, cfg.horizon, threads);
    let elapsed = start.elapsed();

    let mut counts = ClassCounts::default();
    let mut delay = [
        Histogram::new(0.0, 2_000.0, 2_000),
        Histogram::new(0.0, 2_000.0, 2_000),
        Histogram::new(0.0, 2_000.0, 2_000),
    ];
    let mut registry = MetricsRegistry::default();
    let mut summaries = Vec::with_capacity(domains.len());
    let mut leak_clean = true;
    let mut events = 0u64;
    let mut handovers = 0u64;
    let mut btx = (0u64, 0u64);
    // Merge order is domain-index order — part of the determinism
    // contract (registry folding and histogram merging are commutative
    // today, but the order is pinned so they never need to be).
    for d in &mut domains {
        leak_clean &= d.finalize();
        counts.absorb(&d.counts);
        for (dl, dd) in delay.iter_mut().zip(&d.delay) {
            dl.merge(dd);
        }
        registry.merge(&domain_registry(d));
        events += d.events_processed;
        handovers += d.handovers;
        btx.0 += d.boundary_tx.0;
        btx.1 += d.boundary_tx.1;
        summaries.push(DomainSummary {
            index: d.index,
            hosts: d.homed_hosts(),
            events: d.events_processed,
            handovers: d.handovers,
            counts: d.counts,
            boundary_tx: d.boundary_tx,
            boundary_rx: d.boundary_rx,
        });
    }
    MetroResults {
        counts,
        delay,
        events_processed: events,
        handovers,
        boundary_packets: btx.0,
        boundary_bytes: btx.1,
        leak_clean,
        domains: summaries,
        registry,
        report,
        elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MetroConfig {
        MetroConfig {
            domains: 3,
            hosts: 90,
            traffic_stop: SimTime::from_secs(2),
            horizon: SimTime::from_millis(2_500),
            ..MetroConfig::default()
        }
    }

    #[test]
    fn run_is_thread_count_invariant() {
        let cfg = small();
        let base = run(&cfg, 1);
        let art = base.artifact();
        for threads in [2, 8] {
            let r = run(&cfg, threads);
            assert_eq!(art, r.artifact(), "threads={threads}");
            assert_eq!(base.counts, r.counts);
        }
    }

    #[test]
    fn conservation_balances_and_pools_drain() {
        let r = run(&small(), 2);
        assert!(r.counts.conservation_violations().is_empty());
        assert!(r.leak_clean);
        assert!(r.counts.generated.iter().sum::<u64>() > 0);
        assert!(r.counts.delivered.iter().sum::<u64>() > 0);
    }

    #[test]
    fn remote_hosts_cross_boundaries() {
        let r = run(&small(), 1);
        assert!(
            r.boundary_packets > 0,
            "remote fraction must produce crossings"
        );
        assert_eq!(r.report.messages, r.boundary_packets);
        let rx: u64 = r.domains.iter().map(|d| d.boundary_rx.0).sum();
        // Every boundary packet is received unless it was still in
        // flight at the final barrier (delivered to a queue, then
        // counted as horizon drop — still received).
        assert_eq!(rx, r.boundary_packets);
    }

    #[test]
    fn single_domain_has_no_boundary_traffic() {
        let cfg = MetroConfig {
            domains: 1,
            hosts: 40,
            ..small()
        };
        let r = run(&cfg, 4);
        assert_eq!(r.boundary_packets, 0);
        assert_eq!(r.report.epochs, 1, "single shard bypasses the epoch loop");
        assert!(r.counts.conservation_violations().is_empty());
    }

    #[test]
    fn schemes_order_rt_drops_sensibly() {
        // With classification on, real-time should never drop more than
        // it does under the class-blind scheme on the same workload.
        let mk = |scheme| {
            let cfg = MetroConfig {
                scheme,
                blackout: SimDuration::from_millis(400),
                mean_residence: SimDuration::from_millis(1_500),
                buffer_request: 4,
                ..small()
            };
            run(&cfg, 2)
        };
        let classified = mk(Scheme::Dual { classify: true });
        let blind = mk(Scheme::Dual { classify: false });
        let none = mk(Scheme::NoBuffer);
        assert!(classified.counts.drops(0) <= blind.counts.drops(0));
        assert!(none.counts.drops(0) >= classified.counts.drops(0));
        assert!(
            none.counts.dropped_blackout.iter().sum::<u64>()
                > blind.counts.dropped_blackout.iter().sum::<u64>()
        );
    }

    #[test]
    fn registry_merges_in_domain_order_to_run_totals() {
        let r = run(&small(), 2);
        assert_eq!(
            r.registry.counter_value("metro.generated.rt"),
            r.counts.generated[0]
        );
        assert_eq!(r.registry.counter_value("metro.events"), r.events_processed);
        assert_eq!(
            r.registry.counter_value("metro.boundary.tx_pkts"),
            r.boundary_packets
        );
    }

    #[test]
    #[should_panic(expected = "boundary latency must be > 0")]
    fn zero_lookahead_multi_domain_is_rejected() {
        let cfg = MetroConfig {
            boundary_latency: SimDuration::ZERO,
            ..small()
        };
        let _ = run(&cfg, 1);
    }

    #[test]
    fn remote_population_tracks_the_fraction() {
        let cfg = MetroConfig {
            hosts: 10_000,
            remote_fraction: 0.25,
            ..MetroConfig::default()
        };
        let remote = (0..cfg.hosts).filter(|&h| cfg.is_remote(h)).count();
        let frac = remote as f64 / cfg.hosts as f64;
        assert!((frac - 0.25).abs() < 0.02, "got {frac}");
        // And is a topology property: the same at any seed.
        let reseeded = MetroConfig {
            seed: 999,
            ..cfg.clone()
        };
        assert_eq!(
            (0..cfg.hosts).filter(|&h| cfg.is_remote(h)).count(),
            (0..cfg.hosts).filter(|&h| reseeded.is_remote(h)).count()
        );
    }
}
