//! Handover spans: multi-phase operations as first-class measurements.

use fh_sim::{SimDuration, SimTime};

/// Handle for a span created by [`SpanStore::begin`].
///
/// The sentinel [`SpanId::NONE`] is returned while the store is
/// disabled; every [`SpanStore`] method silently ignores it, so
/// instrumentation sites never need their own enabled check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(u32);

impl SpanId {
    /// The "no span" sentinel handed out while the store is disabled.
    pub const NONE: SpanId = SpanId(u32::MAX);

    /// `true` for the disabled-store sentinel.
    #[must_use]
    pub fn is_none(self) -> bool {
        self == SpanId::NONE
    }
}

/// One recorded span: a named interval on a track, with timestamped
/// phase marks and a terminal outcome.
#[derive(Debug, Clone)]
pub struct Span {
    /// Operation name (e.g. `"handover"`).
    pub name: &'static str,
    /// Track the span belongs to — one per actor, so concurrent
    /// operations render as parallel rows in a timeline viewer.
    pub track: u64,
    /// When the operation began.
    pub start: SimTime,
    /// When the operation ended; `None` while still open.
    pub end: Option<SimTime>,
    /// Terminal annotation (e.g. `"predictive"`, `"reactive"`, `"failed"`).
    pub outcome: Option<&'static str>,
    /// Timestamped phase annotations, in recording order.
    pub marks: Vec<(SimTime, &'static str)>,
}

impl Span {
    /// The first mark with the given label, if any.
    #[must_use]
    pub fn mark(&self, label: &str) -> Option<SimTime> {
        self.marks
            .iter()
            .find(|(_, l)| *l == label)
            .map(|&(t, _)| t)
    }

    /// Elapsed time from the first `from` mark to the first `to` mark —
    /// the per-phase latency primitive (e.g. `phase("link-down",
    /// "link-up")` is the blackout window). `None` unless both marks
    /// exist in that order.
    #[must_use]
    pub fn phase(&self, from: &str, to: &str) -> Option<SimDuration> {
        let a = self.mark(from)?;
        let b = self.mark(to)?;
        if b < a {
            return None;
        }
        Some(b.saturating_since(a))
    }

    /// Total span duration; `None` while open.
    #[must_use]
    pub fn duration(&self) -> Option<SimDuration> {
        self.end.map(|e| e.saturating_since(self.start))
    }
}

/// An append-only store of [`Span`]s.
///
/// Disabled by default: [`SpanStore::begin`] then returns
/// [`SpanId::NONE`] and nothing is stored, so span instrumentation left
/// in hot paths costs one branch per call.
#[derive(Debug, Clone, Default)]
pub struct SpanStore {
    enabled: bool,
    spans: Vec<Span>,
}

impl SpanStore {
    /// Creates a disabled store.
    #[must_use]
    pub fn new() -> Self {
        SpanStore {
            enabled: false,
            spans: Vec::new(),
        }
    }

    /// Switches span recording on.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// `true` while recording.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Opens a span. Returns [`SpanId::NONE`] while disabled.
    pub fn begin(&mut self, name: &'static str, track: u64, now: SimTime) -> SpanId {
        if !self.enabled {
            return SpanId::NONE;
        }
        let id = SpanId(u32::try_from(self.spans.len()).expect("span count fits u32"));
        self.spans.push(Span {
            name,
            track,
            start: now,
            end: None,
            outcome: None,
            marks: Vec::new(),
        });
        id
    }

    /// Adds a timestamped phase mark. Marks after [`SpanStore::end`] are
    /// allowed — a span's terminal outcome can precede trailing
    /// measurements such as FNA→first-delivery.
    pub fn annotate(&mut self, id: SpanId, now: SimTime, label: &'static str) {
        if let Some(span) = self.get_mut(id) {
            span.marks.push((now, label));
        }
    }

    /// Closes a span with its terminal outcome. Later `end` calls on the
    /// same span are ignored (first close wins).
    pub fn end(&mut self, id: SpanId, now: SimTime, outcome: &'static str) {
        if let Some(span) = self.get_mut(id) {
            if span.end.is_none() {
                span.end = Some(now);
                span.outcome = Some(outcome);
            }
        }
    }

    /// `true` if the span exists and has not been closed.
    #[must_use]
    pub fn is_open(&self, id: SpanId) -> bool {
        !id.is_none()
            && self
                .spans
                .get(id.0 as usize)
                .is_some_and(|s| s.end.is_none())
    }

    /// All recorded spans, in `begin` order.
    #[must_use]
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Ids of spans that are still open, in `begin` order.
    #[must_use]
    pub fn open_spans(&self) -> Vec<SpanId> {
        self.spans
            .iter()
            .enumerate()
            .filter(|(_, s)| s.end.is_none())
            .map(|(i, _)| SpanId(i as u32))
            .collect()
    }

    fn get_mut(&mut self, id: SpanId) -> Option<&mut Span> {
        if id.is_none() {
            return None;
        }
        self.spans.get_mut(id.0 as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_store_hands_out_none_and_ignores_it() {
        let mut s = SpanStore::new();
        let id = s.begin("handover", 7, SimTime::ZERO);
        assert!(id.is_none());
        s.annotate(id, SimTime::from_millis(1), "x");
        s.end(id, SimTime::from_millis(2), "done");
        assert!(s.spans().is_empty());
    }

    #[test]
    fn phase_reads_latency_between_marks() {
        let mut s = SpanStore::new();
        s.enable();
        let id = s.begin("handover", 1, SimTime::from_millis(100));
        s.annotate(id, SimTime::from_millis(110), "link-down");
        s.annotate(id, SimTime::from_millis(150), "link-up");
        s.end(id, SimTime::from_millis(200), "predictive");
        let span = &s.spans()[0];
        assert_eq!(
            span.phase("link-down", "link-up"),
            Some(SimDuration::from_millis(40))
        );
        assert_eq!(span.duration(), Some(SimDuration::from_millis(100)));
        assert_eq!(span.outcome, Some("predictive"));
        assert_eq!(span.phase("link-up", "link-down"), None);
        assert_eq!(span.phase("link-down", "missing"), None);
    }

    #[test]
    fn marks_after_end_are_kept_and_first_end_wins() {
        let mut s = SpanStore::new();
        s.enable();
        let id = s.begin("handover", 1, SimTime::ZERO);
        s.end(id, SimTime::from_millis(50), "reactive");
        s.annotate(id, SimTime::from_millis(60), "first-delivery");
        s.end(id, SimTime::from_millis(70), "failed");
        let span = &s.spans()[0];
        assert_eq!(span.end, Some(SimTime::from_millis(50)));
        assert_eq!(span.outcome, Some("reactive"));
        assert_eq!(span.mark("first-delivery"), Some(SimTime::from_millis(60)));
    }

    #[test]
    fn open_spans_tracks_unclosed_ids() {
        let mut s = SpanStore::new();
        s.enable();
        let a = s.begin("handover", 1, SimTime::ZERO);
        let b = s.begin("handover", 2, SimTime::ZERO);
        s.end(a, SimTime::from_millis(1), "predictive");
        assert!(!s.is_open(a));
        assert!(s.is_open(b));
        assert_eq!(s.open_spans(), vec![b]);
    }
}
