//! Structured failure reports for expectation engines.
//!
//! A [`FailureReport`] collects the violations a post-run evaluation
//! found — one [`ReportEntry`] per failed check, each naming the subject
//! (a plan, a grid point, an artifact), the check that failed and a
//! human-readable detail — plus free-form context pairs (plan name, seed,
//! thread count). The JSON rendering is deterministic: entries appear in
//! insertion order and strings are escaped exactly as in
//! [`crate::export`], so CI can `cmp` reports the same way it compares
//! artifacts.
//!
//! The FNV-1a helper lives here too: expectation engines lock CSV
//! artifacts by 64-bit content hash, and the report prints the observed
//! hash so a lock can be re-pinned from the failure output alone.
//!
//! # Examples
//!
//! ```
//! use fh_telemetry::report::FailureReport;
//!
//! let mut report = FailureReport::new("storm.toml");
//! report.context("seed", "2003");
//! report.violation("point mhs=8 scheme=NAR", "max_failed_ratio", "0.50 > 0.05");
//! assert!(!report.is_empty());
//! assert!(report.to_json().contains("max_failed_ratio"));
//! ```

use std::fmt::Write as _;

/// One failed check: who, what, why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportEntry {
    /// What was being checked (a grid point, an artifact, the whole plan).
    pub subject: String,
    /// The check that failed (e.g. `conservation`, `class_p99_max_ms`).
    pub check: String,
    /// Human-readable detail: observed vs expected.
    pub detail: String,
}

/// A structured collection of expectation violations for one evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureReport {
    /// What was evaluated (plan name or file).
    pub name: String,
    /// Free-form context pairs (seed, threads, …), in insertion order.
    pub context: Vec<(String, String)>,
    /// The violations, in evaluation order.
    pub entries: Vec<ReportEntry>,
}

impl FailureReport {
    /// Starts an empty report for the named evaluation.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        FailureReport {
            name: name.into(),
            context: Vec::new(),
            entries: Vec::new(),
        }
    }

    /// Attaches a context pair (e.g. `seed` → `2003`).
    pub fn context(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.context.push((key.into(), value.into()));
    }

    /// Records one failed check.
    pub fn violation(
        &mut self,
        subject: impl Into<String>,
        check: impl Into<String>,
        detail: impl Into<String>,
    ) {
        self.entries.push(ReportEntry {
            subject: subject.into(),
            check: check.into(),
            detail: detail.into(),
        });
    }

    /// `true` when no violation has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Renders the report as deterministic, pretty-printed JSON. Entries
    /// and context pairs appear in insertion order; given the same
    /// violations the bytes are identical.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"name\": \"{}\",", escape(&self.name));
        out.push_str("  \"context\": {");
        for (i, (k, v)) in self.context.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\": \"{}\"", escape(k), escape(v));
        }
        if !self.context.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n");
        let _ = writeln!(out, "  \"violations\": {},", self.entries.len());
        out.push_str("  \"entries\": [");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"subject\": \"{}\", \"check\": \"{}\", \"detail\": \"{}\"}}",
                escape(&e.subject),
                escape(&e.check),
                escape(&e.detail)
            );
        }
        if !self.entries.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// 64-bit FNV-1a hash of a byte string — the artifact content lock used
/// by scenario-plan expectations. Stable across platforms and releases
/// (it is a fixed algorithm, not `DefaultHasher`), cheap enough to run on
/// every artifact, and printed as `0x…` hex by [`fnv1a64_hex`].
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// [`fnv1a64`] formatted the way plans and reports spell hashes:
/// lowercase hex with an `0x` prefix, zero-padded to 16 digits.
#[must_use]
pub fn fnv1a64_hex(bytes: &[u8]) -> String {
    format!("{:#018x}", fnv1a64(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_renders_and_is_empty() {
        let mut report = FailureReport::new("plan");
        assert!(report.is_empty());
        let json = report.to_json();
        assert!(json.contains("\"violations\": 0"));
        assert!(json.contains("\"entries\": []"));
        report.violation("p", "c", "d");
        assert!(!report.is_empty());
    }

    #[test]
    fn json_is_deterministic_and_ordered() {
        let build = || {
            let mut r = FailureReport::new("storm.toml");
            r.context("seed", "2003");
            r.context("threads", "4");
            r.violation("point 0", "conservation", "flow 1: sent 10, accounted 9");
            r.violation("artifact", "artifact_fnv1a", "0x01 != 0x02");
            r
        };
        let a = build().to_json();
        assert_eq!(a, build().to_json());
        let conservation = a.find("conservation").expect("first entry");
        let artifact = a.find("artifact_fnv1a").expect("second entry");
        assert!(conservation < artifact, "entries must keep insertion order");
        assert!(a.find("\"seed\"").expect("seed") < a.find("\"threads\"").expect("threads"));
    }

    #[test]
    fn json_escapes_quotes_and_newlines() {
        let mut r = FailureReport::new("a\"b");
        r.violation("s", "c", "line1\nline2");
        let json = r.to_json();
        assert!(json.contains("a\\\"b"));
        assert!(json.contains("line1\\nline2"));
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
        assert_eq!(fnv1a64_hex(b""), "0xcbf29ce484222325");
    }
}
