//! The flight recorder: a bounded ring of timestamped structured events.

use fh_sim::SimTime;

/// A fixed-capacity ring buffer of `(SimTime, E)` events.
///
/// Designed to be left on during long runs: when the ring fills, the
/// **oldest** events are overwritten (flight-recorder semantics — the
/// most recent history survives a crash investigation), and the number
/// of overwritten events is counted so truncation is never silent.
///
/// Disabled recorders cost one branch per [`FlightRecorder::record`]
/// call and hold no storage. With the crate's `recorder` feature
/// compiled out, `record` is an empty inline function.
#[derive(Debug, Clone)]
pub struct FlightRecorder<E> {
    enabled: bool,
    cap: usize,
    buf: Vec<(SimTime, E)>,
    /// Next slot to overwrite once `buf.len() == cap`.
    head: usize,
    overwritten: u64,
    seen: u64,
}

impl<E> Default for FlightRecorder<E> {
    fn default() -> Self {
        FlightRecorder::new()
    }
}

impl<E> FlightRecorder<E> {
    /// Creates a disabled recorder (no storage allocated).
    #[must_use]
    pub fn new() -> Self {
        FlightRecorder {
            enabled: false,
            cap: 0,
            buf: Vec::new(),
            head: 0,
            overwritten: 0,
            seen: 0,
        }
    }

    /// Switches recording on with room for `cap` events. A capacity of
    /// zero records nothing but still counts every event as overwritten.
    pub fn enable(&mut self, cap: usize) {
        self.enabled = true;
        self.cap = cap;
    }

    /// Switches recording off (stored events remain readable).
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// `true` while recording.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one event (no-op unless enabled).
    #[inline]
    pub fn record(&mut self, now: SimTime, event: E) {
        #[cfg(feature = "recorder")]
        {
            if !self.enabled {
                return;
            }
            self.seen += 1;
            if self.cap == 0 {
                self.overwritten += 1;
                return;
            }
            if self.buf.len() < self.cap {
                self.buf.push((now, event));
            } else {
                self.buf[self.head] = (now, event);
                self.head = (self.head + 1) % self.cap;
                self.overwritten += 1;
            }
        }
        #[cfg(not(feature = "recorder"))]
        {
            let _ = (now, event);
        }
    }

    /// Stored events in chronological order (oldest surviving first).
    pub fn events(&self) -> impl Iterator<Item = &(SimTime, E)> {
        self.buf[self.head..]
            .iter()
            .chain(self.buf[..self.head].iter())
    }

    /// Stored events matching `pred`, in chronological order — the
    /// filtered-subscription view (e.g. only buffer events, only one
    /// host's events).
    pub fn filtered<'a, F>(&'a self, mut pred: F) -> impl Iterator<Item = &'a (SimTime, E)>
    where
        F: FnMut(&E) -> bool + 'a,
    {
        self.events().filter(move |(_, e)| pred(e))
    }

    /// Number of events currently stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing is stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events offered to the recorder while enabled.
    #[must_use]
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Events lost to ring wraparound (oldest-first overwrite).
    #[must_use]
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// Discards stored events and counters, keeping the configuration.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.overwritten = 0;
        self.seen = 0;
    }
}

#[cfg(all(test, feature = "recorder"))]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_stores_nothing() {
        let mut r: FlightRecorder<u32> = FlightRecorder::new();
        r.record(SimTime::ZERO, 1);
        assert!(!r.is_enabled());
        assert!(r.is_empty());
        assert_eq!(r.seen(), 0);
    }

    #[test]
    fn ring_wraparound_keeps_latest() {
        let mut r: FlightRecorder<u32> = FlightRecorder::new();
        r.enable(3);
        for i in 0..7u32 {
            r.record(SimTime::from_millis(u64::from(i)), i);
        }
        let kept: Vec<u32> = r.events().map(|&(_, e)| e).collect();
        assert_eq!(kept, vec![4, 5, 6]);
        assert_eq!(r.len(), 3);
        assert_eq!(r.seen(), 7);
        assert_eq!(r.overwritten(), 4);
        // Timestamps stay chronological across the wrap seam.
        let times: Vec<u64> = r.events().map(|&(t, _)| t.as_nanos()).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
    }

    #[test]
    fn capacity_zero_counts_but_never_stores() {
        let mut r: FlightRecorder<u32> = FlightRecorder::new();
        r.enable(0);
        for i in 0..5u32 {
            r.record(SimTime::ZERO, i);
        }
        assert!(r.is_empty());
        assert_eq!(r.seen(), 5);
        assert_eq!(r.overwritten(), 5);
    }

    #[test]
    fn filtered_subscription_sees_a_subset_in_order() {
        let mut r: FlightRecorder<u32> = FlightRecorder::new();
        r.enable(16);
        for i in 0..10u32 {
            r.record(SimTime::from_millis(u64::from(i)), i);
        }
        let evens: Vec<u32> = r.filtered(|&e| e % 2 == 0).map(|&(_, e)| e).collect();
        assert_eq!(evens, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn clear_keeps_configuration() {
        let mut r: FlightRecorder<u32> = FlightRecorder::new();
        r.enable(2);
        r.record(SimTime::ZERO, 1);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.seen(), 0);
        assert!(r.is_enabled());
        r.record(SimTime::ZERO, 2);
        assert_eq!(r.len(), 1);
    }
}
