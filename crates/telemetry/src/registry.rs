//! The metrics registry: typed counters, gauges and histograms behind
//! handle-based ids.

use std::collections::BTreeMap;

use fh_sim::stats::Histogram;

/// Handle for a counter registered with [`MetricsRegistry::counter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CounterId(u32);

/// Handle for a gauge registered with [`MetricsRegistry::gauge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GaugeId(u32);

/// Handle for a histogram registered with [`MetricsRegistry::histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HistogramId(u32);

/// A registry of named metrics.
///
/// Registration (`counter`/`gauge`/`histogram`) is get-or-create by
/// name and returns a copyable id; updates through an id are an array
/// index, so hot paths pay no string hashing. Name-keyed lookups and
/// iteration are deterministic (sorted by name), and two registries
/// built on independent shards [`MetricsRegistry::merge`] by name.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counter_index: BTreeMap<String, u32>,
    counters: Vec<u64>,
    gauge_index: BTreeMap<String, u32>,
    gauges: Vec<f64>,
    histogram_index: BTreeMap<String, u32>,
    histograms: Vec<Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Gets or registers the counter called `name`.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(&id) = self.counter_index.get(name) {
            return CounterId(id);
        }
        let id = u32::try_from(self.counters.len()).expect("counter count fits u32");
        self.counter_index.insert(name.to_owned(), id);
        self.counters.push(0);
        CounterId(id)
    }

    /// Increments a counter by one.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.counters[id.0 as usize] += 1;
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters[id.0 as usize] += n;
    }

    /// Current value of a counter.
    #[must_use]
    pub fn get(&self, id: CounterId) -> u64 {
        self.counters[id.0 as usize]
    }

    /// Counter value looked up by name (0 when never registered) — the
    /// assertion-friendly read used by tests and report code.
    #[must_use]
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counter_index
            .get(name)
            .map_or(0, |&id| self.counters[id as usize])
    }

    /// All counters as `(name, value)`, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counter_index
            .iter()
            .map(|(name, &id)| (name.as_str(), self.counters[id as usize]))
    }

    /// Gets or registers the gauge called `name` (initially 0.0).
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if let Some(&id) = self.gauge_index.get(name) {
            return GaugeId(id);
        }
        let id = u32::try_from(self.gauges.len()).expect("gauge count fits u32");
        self.gauge_index.insert(name.to_owned(), id);
        self.gauges.push(0.0);
        GaugeId(id)
    }

    /// Sets a gauge to `v`.
    #[inline]
    pub fn set(&mut self, id: GaugeId, v: f64) {
        self.gauges[id.0 as usize] = v;
    }

    /// Current value of a gauge.
    #[must_use]
    pub fn gauge_value(&self, id: GaugeId) -> f64 {
        self.gauges[id.0 as usize]
    }

    /// All gauges as `(name, value)`, sorted by name.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauge_index
            .iter()
            .map(|(name, &id)| (name.as_str(), self.gauges[id as usize]))
    }

    /// Gets or registers the histogram called `name` with `n_bins`
    /// equal bins over `[lo, hi)`. The binning arguments only apply on
    /// first registration.
    pub fn histogram(&mut self, name: &str, lo: f64, hi: f64, n_bins: usize) -> HistogramId {
        if let Some(&id) = self.histogram_index.get(name) {
            return HistogramId(id);
        }
        let id = u32::try_from(self.histograms.len()).expect("histogram count fits u32");
        self.histogram_index.insert(name.to_owned(), id);
        self.histograms.push(Histogram::new(lo, hi, n_bins));
        HistogramId(id)
    }

    /// Records one observation into a histogram.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, x: f64) {
        self.histograms[id.0 as usize].add(x);
    }

    /// Borrow of a histogram for quantile queries.
    #[must_use]
    pub fn histogram_ref(&self, id: HistogramId) -> &Histogram {
        &self.histograms[id.0 as usize]
    }

    /// All histograms as `(name, histogram)`, sorted by name.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histogram_index
            .iter()
            .map(|(name, &id)| (name.as_str(), &self.histograms[id as usize]))
    }

    /// `true` when nothing has been registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Merges another registry into this one by metric name: counters
    /// add, gauges take the other's value (last-writer-wins, matching
    /// gauge semantics), histograms merge bin-wise. Ids held against
    /// `self` stay valid; ids from `other` do not transfer.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, v) in other.counters() {
            let id = self.counter(name);
            self.add(id, v);
        }
        for (name, v) in other.gauges() {
            let id = self.gauge(name);
            self.set(id, v);
        }
        for (name, h) in other.histograms() {
            if let Some(&id) = self.histogram_index.get(name) {
                self.histograms[id as usize].merge(h);
            } else {
                let id = u32::try_from(self.histograms.len()).expect("histogram count fits u32");
                self.histogram_index.insert(name.to_owned(), id);
                self.histograms.push(h.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_registration_is_get_or_create() {
        let mut r = MetricsRegistry::new();
        let a = r.counter("drops");
        let b = r.counter("drops");
        assert_eq!(a, b);
        r.inc(a);
        r.add(b, 4);
        assert_eq!(r.get(a), 5);
        assert_eq!(r.counter_value("drops"), 5);
        assert_eq!(r.counter_value("never-registered"), 0);
    }

    #[test]
    fn counters_iterate_sorted_by_name() {
        let mut r = MetricsRegistry::new();
        // Register in non-sorted order; iteration must still be sorted
        // so exports are deterministic.
        let z = r.counter("zeta");
        let a = r.counter("alpha");
        r.add(z, 1);
        r.add(a, 2);
        let names: Vec<&str> = r.counters().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }

    #[test]
    fn gauges_hold_latest_value() {
        let mut r = MetricsRegistry::new();
        let g = r.gauge("queue-depth");
        assert_eq!(r.gauge_value(g), 0.0);
        r.set(g, 7.5);
        r.set(g, 3.0);
        assert_eq!(r.gauge_value(g), 3.0);
    }

    #[test]
    fn histograms_observe_and_answer_quantiles() {
        let mut r = MetricsRegistry::new();
        let h = r.histogram("latency-ms", 0.0, 100.0, 100);
        for i in 0..100 {
            r.observe(h, f64::from(i) + 0.5);
        }
        let p50 = r.histogram_ref(h).quantile(0.5).expect("populated");
        assert!((p50 - 50.0).abs() <= 1.0);
    }

    #[test]
    fn merge_combines_by_name() {
        let mut a = MetricsRegistry::new();
        let ac = a.counter("drops");
        a.add(ac, 3);
        let ag = a.gauge("depth");
        a.set(ag, 1.0);
        let ah = a.histogram("lat", 0.0, 10.0, 10);
        a.observe(ah, 2.0);

        let mut b = MetricsRegistry::new();
        let bc = b.counter("drops");
        b.add(bc, 4);
        let b2 = b.counter("only-in-b");
        b.inc(b2);
        let bg = b.gauge("depth");
        b.set(bg, 9.0);
        let bh = b.histogram("lat", 0.0, 10.0, 10);
        b.observe(bh, 7.0);

        a.merge(&b);
        assert_eq!(a.counter_value("drops"), 7);
        assert_eq!(a.counter_value("only-in-b"), 1);
        assert_eq!(a.gauge_value(ag), 9.0);
        assert_eq!(a.histogram_ref(ah).total(), 2);
        // Pre-merge ids against `a` still resolve.
        assert_eq!(a.get(ac), 7);
    }

    #[test]
    fn merge_into_empty_adopts_everything() {
        let mut src = MetricsRegistry::new();
        let c = src.counter("x");
        src.inc(c);
        let h = src.histogram("h", 0.0, 1.0, 2);
        src.observe(h, 0.5);
        let mut dst = MetricsRegistry::new();
        dst.merge(&src);
        assert_eq!(dst.counter_value("x"), 1);
        let names: Vec<&str> = dst.histograms().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["h"]);
    }
}
