//! Deterministic exporters: Chrome-trace JSON, JSONL event dumps and a
//! shared CSV table writer.
//!
//! Every exporter here is a pure function of the recorded history: no
//! wall clocks, no hash-map iteration order, no locale-dependent
//! formatting. Given the same events, the output bytes are identical —
//! which is what lets CI `cmp` timelines across `--threads` counts.

use std::fmt::Write as _;

use fh_sim::SimTime;

use crate::span::Span;

/// One typed CSV cell.
///
/// The two float variants exist because the bench CSVs mix styles: some
/// columns print with Rust's shortest-roundtrip `Display` (`0.05`),
/// others with fixed precision (`12.345`). Both must be reproducible
/// byte-for-byte, so the cell carries its formatting.
#[derive(Debug, Clone, Copy)]
pub enum Cell<'a> {
    /// A literal string.
    Str(&'a str),
    /// An unsigned integer.
    U64(u64),
    /// A float via `Display` (shortest roundtrip, e.g. `0.05`).
    F64(f64),
    /// A float with fixed decimal places, e.g. `Fixed(1.5, 3)` → `1.500`.
    Fixed(f64, usize),
    /// An empty cell (e.g. "no sample" in a delay column).
    Empty,
}

impl From<u64> for Cell<'_> {
    fn from(v: u64) -> Self {
        Cell::U64(v)
    }
}

impl From<usize> for Cell<'_> {
    fn from(v: usize) -> Self {
        Cell::U64(v as u64)
    }
}

impl<'a> From<&'a str> for Cell<'a> {
    fn from(v: &'a str) -> Self {
        Cell::Str(v)
    }
}

impl From<f64> for Cell<'_> {
    fn from(v: f64) -> Self {
        Cell::F64(v)
    }
}

/// The shared CSV writer used by every bench bin.
///
/// Centralizes the comma-joining, newline and column-count discipline
/// that was previously copy-pasted per figure. Output is plain
/// `name,name\nv,v\n` with a trailing newline per row and no quoting —
/// the repo's CSV values never contain commas.
#[derive(Debug, Clone)]
pub struct CsvTable {
    cols: usize,
    out: String,
}

impl CsvTable {
    /// Starts a table with the given header row.
    ///
    /// # Panics
    ///
    /// Panics if `header` is empty.
    #[must_use]
    pub fn new(header: &[&str]) -> Self {
        assert!(!header.is_empty(), "CSV header needs at least one column");
        let mut out = String::new();
        out.push_str(&header.join(","));
        out.push('\n');
        CsvTable {
            cols: header.len(),
            out,
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row's cell count differs from the header's column
    /// count — a malformed table should fail loudly at write time, not
    /// at plot time.
    pub fn row(&mut self, cells: &[Cell<'_>]) {
        assert_eq!(
            cells.len(),
            self.cols,
            "CSV row has {} cells but the header declared {} columns",
            cells.len(),
            self.cols
        );
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                self.out.push(',');
            }
            match *cell {
                Cell::Str(s) => self.out.push_str(s),
                Cell::U64(v) => {
                    let _ = write!(self.out, "{v}");
                }
                Cell::F64(v) => {
                    let _ = write!(self.out, "{v}");
                }
                Cell::Fixed(v, places) => {
                    let _ = write!(self.out, "{v:.places$}");
                }
                Cell::Empty => {}
            }
        }
        self.out.push('\n');
    }

    /// Finishes the table and returns its bytes.
    #[must_use]
    pub fn finish(self) -> String {
        self.out
    }
}

/// An event that knows how to render itself on a timeline.
///
/// Implemented by each layer's event vocabulary (e.g. `fh_net`'s
/// `TraceEvent`) so the exporters stay generic: `name` is the short
/// label shown on the track, `track` groups events by actor, and
/// `args_json` is a complete JSON object (`{...}`) of event details.
pub trait TraceInstant {
    /// Short label for the timeline (e.g. `"buffer-admit"`).
    fn name(&self) -> &'static str;
    /// Track (timeline row) the event belongs to — usually the actor id.
    fn track(&self) -> u64;
    /// Event details as a serialized JSON object, e.g. `{"class":"ef"}`.
    fn args_json(&self) -> String;
}

/// Escapes a string for embedding in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Microseconds with fixed sub-µs precision — the Chrome trace `ts`
/// unit. Formatting through `{:.3}` keeps the output deterministic and
/// keeps full nanosecond resolution.
fn micros(t: SimTime) -> String {
    format!("{:.3}", t.as_nanos() as f64 / 1_000.0)
}

/// Builder for a Chrome-trace ("trace event format") JSON array,
/// loadable in `chrome://tracing` and Perfetto.
///
/// Spans become `"ph":"X"` complete events; span marks and flight
/// recorder events become `"ph":"i"` instants. `pid` partitions
/// independent simulations (e.g. sweep points) and `tid` is the
/// actor-level track within one simulation.
#[derive(Debug, Clone, Default)]
pub struct ChromeTrace {
    events: Vec<String>,
}

impl ChromeTrace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        ChromeTrace::default()
    }

    /// Adds a span as a complete (`"ph":"X"`) event plus one instant
    /// per mark. Open spans are closed at `fallback_end` and labeled
    /// `"open"` so an aborted run still renders.
    pub fn add_span(&mut self, pid: u64, span: &Span, fallback_end: SimTime) {
        let end = span.end.unwrap_or(fallback_end);
        let outcome = span.outcome.unwrap_or("open");
        let dur_ns = end.saturating_since(span.start).as_nanos();
        self.events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{},\"dur\":{:.3},\"pid\":{},\"tid\":{},\"args\":{{\"outcome\":\"{}\"}}}}",
            escape_json(span.name),
            micros(span.start),
            dur_ns as f64 / 1_000.0,
            pid,
            span.track,
            escape_json(outcome),
        ));
        for &(t, label) in &span.marks {
            self.events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"mark\",\"ph\":\"i\",\"ts\":{},\"pid\":{},\"tid\":{},\"s\":\"t\",\"args\":{{\"span\":\"{}\"}}}}",
                escape_json(label),
                micros(t),
                pid,
                span.track,
                escape_json(span.name),
            ));
        }
    }

    /// Adds one flight-recorder event as an instant (`"ph":"i"`).
    pub fn add_instant<E: TraceInstant>(&mut self, pid: u64, t: SimTime, event: &E) {
        self.events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"event\",\"ph\":\"i\",\"ts\":{},\"pid\":{},\"tid\":{},\"s\":\"t\",\"args\":{}}}",
            escape_json(event.name()),
            micros(t),
            pid,
            event.track(),
            event.args_json(),
        ));
    }

    /// Appends another trace's events after this one's — the merge step
    /// for sweep fragments. Appending fragments in grid order (never in
    /// completion order) is what keeps the merged bytes independent of
    /// the worker count.
    pub fn append(&mut self, other: ChromeTrace) {
        self.events.extend(other.events);
    }

    /// Number of events added so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no events have been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serializes the trace as a JSON array of trace events.
    #[must_use]
    pub fn finish(self) -> String {
        let mut out = String::from("[\n");
        for (i, e) in self.events.iter().enumerate() {
            out.push_str(e);
            if i + 1 < self.events.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]\n");
        out
    }
}

/// Dumps timestamped events as JSONL (one JSON object per line):
/// `{"t_ns":..., "name":..., "track":..., "args":{...}}`.
pub fn events_jsonl<'a, E, I>(events: I) -> String
where
    E: TraceInstant + 'a,
    I: IntoIterator<Item = &'a (SimTime, E)>,
{
    let mut out = String::new();
    for (t, e) in events {
        let _ = writeln!(
            out,
            "{{\"t_ns\":{},\"name\":\"{}\",\"track\":{},\"args\":{}}}",
            t.as_nanos(),
            escape_json(e.name()),
            e.track(),
            e.args_json(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanStore;

    struct Ping(u64);

    impl TraceInstant for Ping {
        fn name(&self) -> &'static str {
            "ping"
        }
        fn track(&self) -> u64 {
            self.0
        }
        fn args_json(&self) -> String {
            format!("{{\"n\":{}}}", self.0)
        }
    }

    #[test]
    fn csv_table_formats_each_cell_kind() {
        let mut t = CsvTable::new(&["a", "b", "c", "d", "e"]);
        t.row(&[
            Cell::Str("x"),
            Cell::U64(7),
            Cell::F64(0.05),
            Cell::Fixed(1.5, 3),
            Cell::Empty,
        ]);
        assert_eq!(t.finish(), "a,b,c,d,e\nx,7,0.05,1.500,\n");
    }

    #[test]
    #[should_panic(expected = "2 cells")]
    fn csv_table_rejects_ragged_rows() {
        let mut t = CsvTable::new(&["a", "b", "c"]);
        t.row(&[Cell::U64(1), Cell::U64(2)]);
    }

    #[test]
    fn chrome_trace_emits_spans_marks_and_instants() {
        let mut spans = SpanStore::new();
        spans.enable();
        let id = spans.begin("handover", 3, SimTime::from_millis(1));
        spans.annotate(id, SimTime::from_millis(2), "link-down");
        spans.end(id, SimTime::from_millis(5), "predictive");

        let mut trace = ChromeTrace::new();
        trace.add_span(0, &spans.spans()[0], SimTime::from_millis(9));
        trace.add_instant(0, SimTime::from_millis(4), &Ping(3));
        let json = trace.finish();

        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("]\n"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":4000.000"));
        assert!(json.contains("\"ts\":1000.000"));
        assert!(json.contains("\"outcome\":\"predictive\""));
        assert!(json.contains("\"name\":\"link-down\""));
        assert!(json.contains("\"args\":{\"n\":3}"));
        // Exactly one trailing comma-less element: valid JSON array shape.
        assert_eq!(json.matches("\"ph\":\"i\"").count(), 2);
    }

    #[test]
    fn open_spans_render_with_fallback_end() {
        let mut spans = SpanStore::new();
        spans.enable();
        spans.begin("handover", 1, SimTime::from_millis(10));
        let mut trace = ChromeTrace::new();
        trace.add_span(0, &spans.spans()[0], SimTime::from_millis(15));
        let json = trace.finish();
        assert!(json.contains("\"outcome\":\"open\""));
        assert!(json.contains("\"dur\":5000.000"));
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let events = vec![
            (SimTime::from_millis(1), Ping(1)),
            (SimTime::from_millis(2), Ping(2)),
        ];
        let out = events_jsonl(&events);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"t_ns\":1000000,\"name\":\"ping\",\"track\":1,\"args\":{\"n\":1}}"
        );
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
