//! # fh-telemetry — deterministic observability for the simulator
//!
//! The paper's claims are per-phase quantities — L2 blackout windows,
//! per-class buffering decisions, piggybacked signaling round-trips — so
//! the reproduction needs more than end-of-run aggregates. This crate is
//! the observability spine every layer above `fh-sim` shares:
//!
//! * [`MetricsRegistry`] — typed counters, gauges and histograms behind a
//!   handle-based API. Registration returns a small copyable id; the hot
//!   path is an array index, not a string hash. Registries from
//!   independent shards [`MetricsRegistry::merge`] by name.
//! * [`FlightRecorder`] — a fixed-capacity ring buffer of timestamped
//!   structured events, generic over the event vocabulary. Cheap enough
//!   to leave on (one branch when disabled) and truly zero-cost when the
//!   `recorder` feature is compiled out.
//! * [`SpanStore`] — begin/annotate/end spans so a multi-phase operation
//!   (a handover attempt) is a first-class measurement: per-phase latency
//!   is read off the span's marks instead of re-derived in analysis code.
//! * [`export`] — Chrome-trace JSON (`chrome://tracing` / Perfetto),
//!   JSONL event dumps and a shared CSV table writer. Every exporter is
//!   byte-deterministic for a given recorded history.
//!
//! Everything in this crate is driven by [`fh_sim::SimTime`]: no wall
//! clocks, no global state, no interior mutability — determinism is
//! inherited from the simulator, and exported artifacts are comparable
//! byte-for-byte across thread counts.
//!
//! ## Example
//!
//! ```
//! use fh_sim::SimTime;
//! use fh_telemetry::{FlightRecorder, MetricsRegistry, SpanStore};
//!
//! // Handle-based counters: register once, bump cheaply.
//! let mut reg = MetricsRegistry::new();
//! let drops = reg.counter("drops");
//! reg.add(drops, 3);
//! assert_eq!(reg.get(drops), 3);
//!
//! // A span with per-phase marks.
//! let mut spans = SpanStore::new();
//! spans.enable();
//! let s = spans.begin("handover", 0, SimTime::ZERO);
//! spans.annotate(s, SimTime::from_millis(10), "link-down");
//! spans.annotate(s, SimTime::from_millis(210), "link-up");
//! spans.end(s, SimTime::from_millis(250), "predictive");
//! let blackout = spans.spans()[0].phase("link-down", "link-up").unwrap();
//! assert_eq!(blackout.as_nanos(), 200_000_000);
//!
//! // A flight recorder over any event type.
//! let mut rec: FlightRecorder<&'static str> = FlightRecorder::new();
//! rec.enable(2);
//! rec.record(SimTime::ZERO, "a");
//! rec.record(SimTime::from_secs(1), "b");
//! rec.record(SimTime::from_secs(2), "c"); // wraps: "a" is overwritten
//! let kept: Vec<_> = rec.events().map(|&(_, e)| e).collect();
//! assert_eq!(kept, ["b", "c"]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
mod recorder;
mod registry;
pub mod report;
mod span;

pub use export::{Cell, ChromeTrace, CsvTable, TraceInstant};
pub use recorder::FlightRecorder;
pub use registry::{CounterId, GaugeId, HistogramId, MetricsRegistry};
pub use report::{FailureReport, ReportEntry};
pub use span::{Span, SpanId, SpanStore};
