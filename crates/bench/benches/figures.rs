//! Criterion benchmarks: one per evaluation figure.
//!
//! Each benchmark regenerates (a size-reduced slice of) the corresponding
//! figure, so `cargo bench` both times the simulator and acts as a smoke
//! check that every experiment still runs. The `repro` binary produces
//! the full-size tables.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fh_core::Scheme;
use fh_scenarios::experiments::{self, BufferUtilizationParams};
use fh_sim::SimDuration;

const SEED: u64 = 2003;

fn bench_fig4_2(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_2_buffer_utilization");
    g.sample_size(10);
    g.bench_function("mhs_1_to_6", |b| {
        b.iter(|| {
            let params = BufferUtilizationParams {
                max_mhs: 6,
                ..BufferUtilizationParams::default()
            };
            black_box(experiments::buffer_utilization(params, 1))
        })
    });
    g.finish();
}

fn bench_fig4_3_to_4_5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_3_4_5_qos_drops");
    g.sample_size(10);
    for (name, scheme, capacity) in [
        ("fig4_3_nar_only", Scheme::NarOnly, 40usize),
        (
            "fig4_4_dual_classless",
            Scheme::Dual { classify: false },
            20,
        ),
        (
            "fig4_5_dual_classified",
            Scheme::Dual { classify: true },
            20,
        ),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| black_box(experiments::qos_drops(scheme, capacity, 40, 10, SEED)))
        });
    }
    g.finish();
}

fn bench_fig4_6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_6_rate_sweep");
    g.sample_size(10);
    g.bench_function("three_rates", |b| {
        b.iter(|| {
            black_box(experiments::rate_sweep(
                &[64.0, 128.0, 256.0],
                20,
                40,
                SEED,
                1,
            ))
        })
    });
    g.finish();
}

fn bench_fig4_7_to_4_10(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_7_to_4_10_delay_traces");
    g.sample_size(10);
    for (name, scheme, capacity, delay_ms) in [
        ("fig4_7_fh_buffer40", Scheme::NarOnly, 40usize, 2u64),
        (
            "fig4_8_dual_classless",
            Scheme::Dual { classify: false },
            20,
            2,
        ),
        (
            "fig4_9_classified_2ms",
            Scheme::Dual { classify: true },
            20,
            2,
        ),
        (
            "fig4_10_classified_50ms",
            Scheme::Dual { classify: true },
            20,
            50,
        ),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                black_box(experiments::delay_trace(
                    scheme,
                    capacity,
                    40,
                    SimDuration::from_millis(delay_ms),
                    SEED,
                ))
            })
        });
    }
    g.finish();
}

fn bench_fig4_12_to_4_14(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_12_to_4_14_tcp_handoff");
    g.sample_size(10);
    g.bench_function("fig4_12_no_buffering", |b| {
        b.iter(|| black_box(experiments::tcp_l2_handoff(false, SEED)))
    });
    g.bench_function("fig4_13_proposed", |b| {
        b.iter(|| black_box(experiments::tcp_l2_handoff(true, SEED)))
    });
    g.finish();
}

criterion_group!(
    figures,
    bench_fig4_2,
    bench_fig4_3_to_4_5,
    bench_fig4_6,
    bench_fig4_7_to_4_10,
    bench_fig4_12_to_4_14
);
criterion_main!(figures);
