//! Datapath hot-path microbenches: what one packet costs.
//!
//! Three questions, answered in `BENCH_datapath.json`:
//!
//! 1. Did the refactor slow the per-packet decision down? — the legacy
//!    `policy::matrix` functions (the monolith's hot path) vs the
//!    [`PolicyEngine`] the datapath now calls, over the identical
//!    decision grid. Guard: enum dispatch within 1.05× of legacy.
//! 2. What would `dyn` cost? — the same grid through
//!    `Box<dyn BufferPolicy>`, pinning why the engine is an enum.
//! 3. What does a packet cost end-to-end? — a full handover scenario
//!    (per-event cost through classify → admit → park | forward | tunnel
//!    with signaling around it), the number that must not regress vs the
//!    pre-refactor baseline in `tests/golden/`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use fh_core::policy::{
    nar_action, nar_overflow, par_action, Admit, AdmitCtx, AvailabilityCase, BufferPolicy,
    EnhancedDualClass, KrishnamurthiSmooth, NarFifo, NoBufferPolicy, Overflow, ParAction,
    PolicyEngine, Role, SafetyNetBicast,
};
use fh_core::{AdmissionLimit, ProtocolConfig, Scheme};
use fh_net::ServiceClass;
use fh_scenarios::{HmipConfig, HmipScenario, MovementPlan};
use fh_sim::SimTime;

const CASES: [AvailabilityCase; 4] = [
    AvailabilityCase::BothAvailable,
    AvailabilityCase::NarOnly,
    AvailabilityCase::ParOnly,
    AvailabilityCase::NoneAvailable,
];

const CLASSES: [ServiceClass; 4] = [
    ServiceClass::Unspecified,
    ServiceClass::RealTime,
    ServiceClass::HighPriority,
    ServiceClass::BestEffort,
];

/// Every (scheme, ctx) pair the decision layer can see: 6 × 4 × 4 × 2 × 2.
fn grid() -> Vec<(Scheme, AdmitCtx)> {
    let mut out = Vec::new();
    for scheme in Scheme::ALL {
        for case in CASES {
            for class in CLASSES {
                for nar_full in [false, true] {
                    for par_granted in [false, true] {
                        out.push((
                            scheme,
                            AdmitCtx {
                                case,
                                class,
                                nar_full,
                                par_granted,
                                threshold_a: 10,
                            },
                        ));
                    }
                }
            }
        }
    }
    out
}

/// Fold verdicts into a checksum so nothing is optimized away. Both
/// variants below produce the *same* `Admit`/`Overflow` values and run
/// them through this same fold, so the timed difference is dispatch, not
/// bookkeeping.
fn fold(acc: u64, par: Admit, nar: Admit, ovf: Overflow) -> u64 {
    let one = |admit: Admit| -> u64 {
        match admit {
            Admit::Park(AdmissionLimit::Grant) => 1,
            Admit::Park(AdmissionLimit::Threshold(a)) => 19 + u64::from(a),
            Admit::Park(AdmissionLimit::PoolOnly) => 2,
            Admit::Forward => 3,
            Admit::Tunnel { park_at_peer } => 4 + u64::from(park_at_peer),
            Admit::Drop => 6,
            Admit::Multicast => 18,
        }
    };
    let o = match ovf {
        Overflow::DropFrontRealtime => 7,
        Overflow::NotifyPeer => 11,
        Overflow::SpillPeer => 13,
        Overflow::TailDrop => 17,
    };
    acc.wrapping_add(one(par))
        .wrapping_add(one(nar) << 3)
        .wrapping_add(o << 6)
}

/// The admission-limit match the monolith's `redirect` ran inline after
/// a `BufferLocal` verdict, folded straight to a checksum contribution
/// (no translation into the new vocabulary — the legacy arm must pay
/// only what the monolith paid).
fn legacy_limit(scheme: Scheme, ctx: &AdmitCtx) -> u64 {
    match (scheme.classifies(), ctx.class) {
        (true, ServiceClass::BestEffort | ServiceClass::Unspecified) => {
            19 + u64::from(ctx.threshold_a)
        }
        (true, _) => 1,
        (false, _) => {
            if ctx.par_granted {
                1
            } else {
                2
            }
        }
    }
}

fn bench_policy_dispatch(c: &mut Criterion) {
    let grid = grid();
    let decisions = grid.len() as u64 * 3; // PAR admit + NAR admit + overflow
    let mut g = c.benchmark_group("policy_dispatch");
    g.sample_size(2000);
    g.throughput(Throughput::Elements(decisions));

    // The monolith's hot path: matrix functions + the inline limit match,
    // folded natively (discriminant casts — the cheapest possible sink).
    g.bench_function("legacy_matrix", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &(scheme, ctx) in &grid {
                let par = par_action(scheme, ctx.case, ctx.class, ctx.nar_full);
                let limit = if par == ParAction::BufferLocal {
                    legacy_limit(scheme, &ctx)
                } else {
                    0
                };
                let nar = nar_action(scheme, ctx.case, ctx.class);
                let ovf = nar_overflow(scheme, ctx.class);
                acc = acc
                    .wrapping_add(par as u64)
                    .wrapping_add(limit << 8)
                    .wrapping_add((nar as u64) << 3)
                    .wrapping_add((ovf as u64) << 6);
            }
            black_box(acc)
        })
    });

    // What the datapath actually runs: enum dispatch, engine derived per
    // packet exactly as `Datapath::redirect` does.
    g.bench_function("engine_enum", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &(scheme, ctx) in &grid {
                let engine = PolicyEngine::for_scheme(scheme);
                let par = engine.admit(Role::Par, &ctx);
                let nar = engine.admit(Role::Nar, &ctx);
                let ovf = engine.overflow(Role::Nar, ctx.class);
                acc = fold(acc, par, nar, ovf);
            }
            black_box(acc)
        })
    });

    // What the datapath runs after the batch refactor: one
    // `classify_batch` per (role, session snapshot), then a table lookup
    // per packet. Same verdicts, same fold — the timed difference is the
    // amortized dispatch. The snapshot loop mirrors the grid with the
    // class dimension innermost, so the checksum matches `engine_enum`
    // (the fold is commutative).
    g.bench_function("engine_batch", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for scheme in Scheme::ALL {
                for case in CASES {
                    for nar_full in [false, true] {
                        for par_granted in [false, true] {
                            let base = AdmitCtx {
                                case,
                                class: ServiceClass::Unspecified,
                                nar_full,
                                par_granted,
                                threshold_a: 10,
                            };
                            let engine = PolicyEngine::for_scheme(scheme);
                            let par_v = engine.classify_batch(Role::Par, &base);
                            let nar_v = engine.classify_batch(Role::Nar, &base);
                            for class in CLASSES {
                                acc = fold(
                                    acc,
                                    par_v.admit(class),
                                    nar_v.admit(class),
                                    nar_v.overflow(class),
                                );
                            }
                        }
                    }
                }
            }
            black_box(acc)
        })
    });

    // The road not taken: vtable dispatch. Boxes are built outside the
    // timed loop so this measures dispatch, not allocation.
    let boxed: Vec<(Box<dyn BufferPolicy>, AdmitCtx)> = grid
        .iter()
        .map(|&(scheme, ctx)| {
            let p: Box<dyn BufferPolicy> = match scheme {
                Scheme::NoBuffer => Box::new(NoBufferPolicy),
                Scheme::NarOnly => Box::new(NarFifo),
                Scheme::ParOnly => Box::new(KrishnamurthiSmooth),
                Scheme::Dual { classify } => Box::new(EnhancedDualClass { classify }),
                Scheme::SafetyNet => Box::new(SafetyNetBicast),
            };
            (p, ctx)
        })
        .collect();
    g.bench_function("dyn_box", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for (policy, ctx) in &boxed {
                let par = policy.admit(Role::Par, ctx);
                let nar = policy.admit(Role::Nar, ctx);
                let ovf = policy.overflow(Role::Nar, ctx.class);
                acc = fold(acc, par, nar, ovf);
            }
            black_box(acc)
        })
    });
    g.finish();
}

/// End-to-end per-packet cost: one full dual-scheme handover, every data
/// packet crossing the layered pipeline at both routers.
fn bench_datapath_scenario(c: &mut Criterion) {
    let mut g = c.benchmark_group("datapath_per_packet");
    g.sample_size(10);
    g.bench_function("one_handover", |b| {
        b.iter(|| {
            let cfg = HmipConfig {
                protocol: ProtocolConfig::with_scheme(Scheme::PROPOSED),
                n_mhs: 4,
                movement: MovementPlan::OneWay,
                seed: 2003,
                ..HmipConfig::default()
            };
            let mut scenario = HmipScenario::build(cfg);
            for i in 0..4 {
                scenario.add_audio_64k(i, ServiceClass::RealTime);
            }
            scenario.run_until(SimTime::from_secs(8));
            black_box(scenario.sim.events_processed())
        })
    });
    g.finish();
}

criterion_group!(datapath, bench_policy_dispatch, bench_datapath_scenario);
criterion_main!(datapath);
