//! Criterion benchmarks for the design-choice ablations DESIGN.md calls
//! out: the best-effort admission threshold `a`, the L2 black-out length,
//! the PAR/NAR buffer split, and the signaling accounting.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fh_core::{ProtocolConfig, Scheme};
use fh_net::ServiceClass;
use fh_scenarios::experiments;
use fh_scenarios::{HmipConfig, HmipScenario, MovementPlan};
use fh_sim::SimTime;

const SEED: u64 = 2003;

fn bench_threshold(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_threshold_a");
    g.sample_size(10);
    g.bench_function("three_values", |b| {
        b.iter(|| black_box(experiments::threshold_sweep(&[0, 10, 19], SEED, 1)))
    });
    g.finish();
}

fn bench_blackout(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_blackout");
    g.sample_size(10);
    g.bench_function("60_200_400ms", |b| {
        b.iter(|| black_box(experiments::blackout_sweep(&[60, 200, 400], SEED, 1)))
    });
    g.finish();
}

fn bench_signaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_signaling");
    g.sample_size(10);
    g.bench_function("one_handover", |b| {
        b.iter(|| black_box(experiments::signaling_overhead(SEED)))
    });
    g.finish();
}

/// Buffer split: how drops change if the dual scheme biased its request
/// toward the PAR or the NAR instead of an even split. Implemented by
/// varying the total request against asymmetric capacities.
fn bench_buffer_split(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_buffer_split");
    g.sample_size(10);
    for (name, capacity) in [("tight_10", 10usize), ("even_20", 20), ("roomy_40", 40)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut protocol = ProtocolConfig::with_scheme(Scheme::PROPOSED);
                protocol.buffer_request = 40;
                let cfg = HmipConfig {
                    protocol,
                    n_mhs: 1,
                    buffer_capacity: capacity,
                    movement: MovementPlan::OneWay,
                    seed: SEED,
                    ..HmipConfig::default()
                };
                let mut scenario = HmipScenario::build(cfg);
                let f1 = scenario.add_audio_128k(0, ServiceClass::RealTime);
                let f2 = scenario.add_audio_128k(0, ServiceClass::HighPriority);
                let f3 = scenario.add_audio_128k(0, ServiceClass::BestEffort);
                scenario.set_traffic_window(SimTime::from_millis(500), SimTime::from_secs(13));
                scenario.run_until(SimTime::from_secs(15));
                black_box((
                    scenario.flow_losses(f1),
                    scenario.flow_losses(f2),
                    scenario.flow_losses(f3),
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(
    ablations,
    bench_threshold,
    bench_blackout,
    bench_signaling,
    bench_buffer_split
);
criterion_main!(ablations);
