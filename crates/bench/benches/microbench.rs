//! Microbenchmarks of the simulator substrate: event queue throughput,
//! buffer-pool operations, routing computation, and end-to-end simulated
//! events per second.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use fh_core::{AdmissionLimit, BufferPool};
use fh_net::{doc_subnet, FlowId, LinkSpec, Packet, ServiceClass, Topology};
use fh_scenarios::{HmipConfig, HmipScenario, MovementPlan};
use fh_sim::{EventQueue, QueueKind, Rng64, SimDuration, SimTime};

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    for kind in [QueueKind::Heap, QueueKind::Calendar] {
        let label = match kind {
            QueueKind::Heap => "push_pop",
            QueueKind::Calendar => "push_pop_calendar",
        };
        for n in [1_000u64, 100_000] {
            g.throughput(Throughput::Elements(n));
            g.bench_with_input(BenchmarkId::new(label, n), &n, |b, &n| {
                let mut rng = Rng64::seed_from(1);
                let times: Vec<SimTime> = (0..n)
                    .map(|_| SimTime::from_nanos(rng.gen_range_u64(1_000_000_000)))
                    .collect();
                b.iter(|| {
                    let mut q = EventQueue::with_kind(kind);
                    for (i, &t) in times.iter().enumerate() {
                        q.push(t, i);
                    }
                    let mut sink = 0usize;
                    while let Some((_, e)) = q.pop() {
                        sink ^= e;
                    }
                    black_box(sink)
                })
            });
        }
        // The simulator's actual access pattern is interleaved hold-model
        // traffic, not fill-then-drain: a steady population where every
        // pop schedules a successor. This is where the calendar's O(1)
        // bucket insert beats the heap's O(log n) sift.
        for n in [1_000u64, 100_000] {
            let steps = 200_000u64;
            g.throughput(Throughput::Elements(steps));
            let hold_label = match kind {
                QueueKind::Heap => "hold_model",
                QueueKind::Calendar => "hold_model_calendar",
            };
            g.bench_with_input(BenchmarkId::new(hold_label, n), &n, |b, &n| {
                b.iter(|| {
                    let mut rng = Rng64::seed_from(9);
                    let mut q = EventQueue::with_kind(kind);
                    for i in 0..n {
                        q.push(SimTime::from_nanos(rng.gen_range_u64(1_000_000)), i);
                    }
                    let mut sink = 0u64;
                    for _ in 0..steps {
                        let (t, e) = q.pop().expect("population is steady");
                        sink ^= e;
                        let next = t + SimDuration::from_nanos(1 + rng.gen_range_u64(1_000_000));
                        q.push(next, e);
                    }
                    black_box(sink)
                })
            });
        }
    }
    g.finish();
}

/// Cancellation cost must stay flat per element as the queue grows: a
/// cancel is one slot write (O(1)); the heap entry is purged lazily when
/// it surfaces. Compare per-element throughput at 1k vs 100k to see the
/// amortized behaviour.
fn bench_event_queue_cancel(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue_cancel");
    for n in [1_000u64, 100_000] {
        g.throughput(Throughput::Elements(n));
        g.bench_with_input(BenchmarkId::new("push_cancel_half_pop", n), &n, |b, &n| {
            let mut rng = Rng64::seed_from(7);
            let times: Vec<SimTime> = (0..n)
                .map(|_| SimTime::from_nanos(rng.gen_range_u64(1_000_000_000)))
                .collect();
            b.iter(|| {
                let mut q = EventQueue::new();
                let keys: Vec<_> = times.iter().map(|&t| q.push(t, 0u64)).collect();
                // Cancel every other timer — the dominant pattern in the
                // simulator (timers armed, then disarmed by progress).
                for key in keys.iter().step_by(2) {
                    black_box(q.cancel(*key));
                }
                let mut sink = 0u64;
                while let Some((_, e)) = q.pop() {
                    sink ^= e;
                }
                black_box(sink)
            })
        });
    }
    g.finish();
}

fn bench_buffer_pool(c: &mut Criterion) {
    let mut g = c.benchmark_group("buffer_pool");
    g.throughput(Throughput::Elements(10_000));
    let key: std::net::Ipv6Addr = "2001:db8::1".parse().unwrap();
    let mk = |class| {
        Packet::data(
            FlowId(1),
            0,
            "2001:db8::2".parse().unwrap(),
            "2001:db8::3".parse().unwrap(),
            class,
            160,
            SimTime::ZERO,
        )
    };

    // The raw arena against the allocator it replaced, same access
    // pattern, no admission logic in either: SoA insert/remove versus one
    // heap box per packet.
    g.bench_function("arena_insert_remove", |b| {
        let pkt = mk(ServiceClass::HighPriority);
        b.iter(|| {
            let mut arena = fh_net::PacketPool::new();
            let mut handles = Vec::with_capacity(64);
            let mut drained = 0usize;
            for _ in 0..10_000 / 64 {
                for _ in 0..64 {
                    handles.push(arena.insert(pkt.clone()));
                }
                for h in handles.drain(..) {
                    drained += usize::from(arena.remove(h).is_some());
                }
            }
            black_box(drained)
        })
    });

    // The full admission path: session lookup + grant accounting + policy
    // + SoA arena. Overhead above `arena_insert_remove` is the admission
    // logic, not the allocator.
    g.bench_function("admit_drain_cycle", |b| {
        let pkt = mk(ServiceClass::HighPriority);
        b.iter(|| {
            let mut pool = BufferPool::new(64);
            pool.grant(key, 64);
            for _ in 0..10_000 / 64 {
                for _ in 0..64 {
                    let _ = pool.try_buffer(key, pkt.clone(), AdmissionLimit::Grant);
                }
                black_box(pool.drain(key).len());
            }
        })
    });

    // The bare boxed queue with no admission logic at all — the floor any
    // buffering scheme pays for allocation alone. Compare against
    // `arena_insert_remove` for the allocator story and against
    // `admit_drain_cycle` for what admission control costs on top.
    g.bench_function("admit_drain_cycle_boxed", |b| {
        let pkt = mk(ServiceClass::HighPriority);
        b.iter(|| {
            let mut queue: std::collections::VecDeque<Box<Packet>> =
                std::collections::VecDeque::new();
            let mut drained = 0usize;
            for _ in 0..10_000 / 64 {
                for _ in 0..64 {
                    if queue.len() < 64 {
                        queue.push_back(Box::new(pkt.clone()));
                    }
                }
                while let Some(boxed) = queue.pop_front() {
                    drained += usize::from(boxed.size > 0);
                }
            }
            black_box(drained)
        })
    });

    // The case-1.a/2.a eviction scan: a full pool where every admit must
    // find and evict the oldest real-time packet. Walks the arena's hot
    // rows only — the cold payload columns stay untouched.
    g.bench_function("dropfront_evict_full_pool", |b| {
        let rt = mk(ServiceClass::RealTime);
        b.iter(|| {
            let mut pool = BufferPool::new(64);
            pool.grant(key, 64);
            for _ in 0..64 {
                let _ = pool.try_buffer(key, rt.clone(), AdmissionLimit::Grant);
            }
            let mut evicted = 0usize;
            for _ in 0..10_000 {
                if let Ok(Some(_)) = pool.buffer_realtime_dropfront(key, rt.clone()) {
                    evicted += 1;
                }
            }
            black_box(evicted)
        })
    });
    g.finish();
}

fn bench_routing(c: &mut Criterion) {
    let mut g = c.benchmark_group("routing");
    for n in [10usize, 50] {
        g.bench_with_input(BenchmarkId::new("compute_routes", n), &n, |b, &n| {
            b.iter(|| {
                let mut topo = Topology::new();
                let nodes: Vec<_> = (0..n).map(|i| topo.add_node(format!("n{i}"))).collect();
                let spec = LinkSpec::new(10_000_000, SimDuration::from_millis(1), 50);
                for w in nodes.windows(2) {
                    topo.add_link(w[0], w[1], spec);
                }
                // A few cross links.
                for i in (0..n).step_by(7) {
                    let j = (i + n / 2) % n;
                    if i != j {
                        topo.add_link(nodes[i], nodes[j], spec);
                    }
                }
                for (i, &node) in nodes.iter().enumerate() {
                    topo.add_prefix(doc_subnet(i as u16), node);
                }
                topo.compute_routes();
                black_box(topo.route(nodes[0], doc_subnet((n - 1) as u16).host(1)))
            })
        });
    }
    g.finish();
}

fn bench_scenario_event_rate(c: &mut Criterion) {
    let mut g = c.benchmark_group("scenario");
    g.sample_size(10);
    g.bench_function("one_handover_16s_sim", |b| {
        b.iter(|| {
            let mut scenario = HmipScenario::build(HmipConfig {
                movement: MovementPlan::OneWay,
                ..HmipConfig::default()
            });
            let f = scenario.add_audio_64k(0, ServiceClass::RealTime);
            scenario.set_traffic_window(SimTime::from_millis(500), SimTime::from_secs(14));
            scenario.run_until(SimTime::from_secs(16));
            black_box((scenario.flow_losses(f), scenario.sim.events_processed()))
        })
    });
    g.finish();
}

criterion_group!(
    micro,
    bench_event_queue,
    bench_event_queue_cancel,
    bench_buffer_pool,
    bench_routing,
    bench_scenario_event_rate
);
criterion_main!(micro);
