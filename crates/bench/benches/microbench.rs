//! Microbenchmarks of the simulator substrate: event queue throughput,
//! buffer-pool operations, routing computation, and end-to-end simulated
//! events per second.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use fh_core::{AdmissionLimit, BufferPool};
use fh_net::{doc_subnet, FlowId, LinkSpec, Packet, ServiceClass, Topology};
use fh_scenarios::{HmipConfig, HmipScenario, MovementPlan};
use fh_sim::{EventQueue, Rng64, SimDuration, SimTime};

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    for n in [1_000u64, 100_000] {
        g.throughput(Throughput::Elements(n));
        g.bench_with_input(BenchmarkId::new("push_pop", n), &n, |b, &n| {
            let mut rng = Rng64::seed_from(1);
            let times: Vec<SimTime> = (0..n)
                .map(|_| SimTime::from_nanos(rng.gen_range_u64(1_000_000_000)))
                .collect();
            b.iter(|| {
                let mut q = EventQueue::new();
                for (i, &t) in times.iter().enumerate() {
                    q.push(t, i);
                }
                let mut sink = 0usize;
                while let Some((_, e)) = q.pop() {
                    sink ^= e;
                }
                black_box(sink)
            })
        });
    }
    g.finish();
}

/// Cancellation cost must stay flat per element as the queue grows: a
/// cancel is one slot write (O(1)); the heap entry is purged lazily when
/// it surfaces. Compare per-element throughput at 1k vs 100k to see the
/// amortized behaviour.
fn bench_event_queue_cancel(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue_cancel");
    for n in [1_000u64, 100_000] {
        g.throughput(Throughput::Elements(n));
        g.bench_with_input(BenchmarkId::new("push_cancel_half_pop", n), &n, |b, &n| {
            let mut rng = Rng64::seed_from(7);
            let times: Vec<SimTime> = (0..n)
                .map(|_| SimTime::from_nanos(rng.gen_range_u64(1_000_000_000)))
                .collect();
            b.iter(|| {
                let mut q = EventQueue::new();
                let keys: Vec<_> = times.iter().map(|&t| q.push(t, 0u64)).collect();
                // Cancel every other timer — the dominant pattern in the
                // simulator (timers armed, then disarmed by progress).
                for key in keys.iter().step_by(2) {
                    black_box(q.cancel(*key));
                }
                let mut sink = 0u64;
                while let Some((_, e)) = q.pop() {
                    sink ^= e;
                }
                black_box(sink)
            })
        });
    }
    g.finish();
}

fn bench_buffer_pool(c: &mut Criterion) {
    let mut g = c.benchmark_group("buffer_pool");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("admit_drain_cycle", |b| {
        let key = "2001:db8::1".parse().unwrap();
        let pkt = Packet::data(
            FlowId(1),
            0,
            "2001:db8::2".parse().unwrap(),
            "2001:db8::3".parse().unwrap(),
            ServiceClass::HighPriority,
            160,
            SimTime::ZERO,
        );
        b.iter(|| {
            let mut pool = BufferPool::new(64);
            pool.grant(key, 64);
            for _ in 0..10_000 / 64 {
                for _ in 0..64 {
                    let _ = pool.try_buffer(key, pkt.clone(), AdmissionLimit::Grant);
                }
                black_box(pool.drain(key).len());
            }
        })
    });
    g.finish();
}

fn bench_routing(c: &mut Criterion) {
    let mut g = c.benchmark_group("routing");
    for n in [10usize, 50] {
        g.bench_with_input(BenchmarkId::new("compute_routes", n), &n, |b, &n| {
            b.iter(|| {
                let mut topo = Topology::new();
                let nodes: Vec<_> = (0..n).map(|i| topo.add_node(format!("n{i}"))).collect();
                let spec = LinkSpec::new(10_000_000, SimDuration::from_millis(1), 50);
                for w in nodes.windows(2) {
                    topo.add_link(w[0], w[1], spec);
                }
                // A few cross links.
                for i in (0..n).step_by(7) {
                    let j = (i + n / 2) % n;
                    if i != j {
                        topo.add_link(nodes[i], nodes[j], spec);
                    }
                }
                for (i, &node) in nodes.iter().enumerate() {
                    topo.add_prefix(doc_subnet(i as u16), node);
                }
                topo.compute_routes();
                black_box(topo.route(nodes[0], doc_subnet((n - 1) as u16).host(1)))
            })
        });
    }
    g.finish();
}

fn bench_scenario_event_rate(c: &mut Criterion) {
    let mut g = c.benchmark_group("scenario");
    g.sample_size(10);
    g.bench_function("one_handover_16s_sim", |b| {
        b.iter(|| {
            let mut scenario = HmipScenario::build(HmipConfig {
                movement: MovementPlan::OneWay,
                ..HmipConfig::default()
            });
            let f = scenario.add_audio_64k(0, ServiceClass::RealTime);
            scenario.set_traffic_window(SimTime::from_millis(500), SimTime::from_secs(14));
            scenario.run_until(SimTime::from_secs(16));
            black_box((scenario.flow_losses(f), scenario.sim.events_processed()))
        })
    });
    g.finish();
}

criterion_group!(
    micro,
    bench_event_queue,
    bench_event_queue_cancel,
    bench_buffer_pool,
    bench_routing,
    bench_scenario_event_rate
);
criterion_main!(micro);
