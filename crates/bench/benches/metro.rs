//! Microbenchmarks of the sharded epoch executor: pure epoch-barrier
//! overhead and boundary-mailbox drain throughput. These isolate the
//! costs the metro scaling bin pays on top of shard work — the numbers
//! that bound how small a useful epoch (boundary latency) can be.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use fh_sim::shard::{run_epochs, Outbox, ShardState};
use fh_sim::{SimDuration, SimTime};

/// A shard that never finishes and never sends: every epoch is pure
/// barrier overhead (`next_event_time` stays beyond the horizon so the
/// early-exit path never triggers).
struct IdleShard;

impl ShardState for IdleShard {
    type Msg = ();

    fn accept(&mut self, _arrival: SimTime, _msg: ()) {}

    fn advance(&mut self, _horizon: SimTime, _outbox: &mut Outbox<()>) {}

    fn next_event_time(&mut self) -> Option<SimTime> {
        Some(SimTime::MAX)
    }
}

/// A shard that floods its peers: `fanout` messages per epoch, each
/// arriving exactly at the barrier — the drain-dominated regime.
struct ChattyShard {
    idx: usize,
    n: usize,
    fanout: u64,
    received: u64,
}

impl ShardState for ChattyShard {
    type Msg = u64;

    fn accept(&mut self, _arrival: SimTime, msg: u64) {
        self.received = self.received.wrapping_add(msg);
    }

    fn advance(&mut self, horizon: SimTime, outbox: &mut Outbox<u64>) {
        for i in 0..self.fanout {
            let dst = (self.idx + 1 + (i as usize % (self.n - 1))) % self.n;
            outbox.send(dst, horizon, i);
        }
    }

    fn next_event_time(&mut self) -> Option<SimTime> {
        Some(SimTime::MAX)
    }
}

fn bench_epoch_barrier(c: &mut Criterion) {
    let mut g = c.benchmark_group("metro_epoch_barrier");
    let epochs = 1_000u64;
    let lookahead = SimDuration::from_millis(1);
    let horizon = SimTime::ZERO + lookahead * epochs;
    for shards in [2usize, 8] {
        g.throughput(Throughput::Elements(epochs));
        g.bench_with_input(
            BenchmarkId::new("empty_epochs", shards),
            &shards,
            |b, &n| {
                b.iter(|| {
                    let mut s: Vec<IdleShard> = (0..n).map(|_| IdleShard).collect();
                    let report = run_epochs(&mut s, lookahead, horizon, 1);
                    assert_eq!(report.epochs, epochs);
                    black_box(report.epochs)
                })
            },
        );
    }
    g.finish();
}

fn bench_mailbox_drain(c: &mut Criterion) {
    let mut g = c.benchmark_group("metro_mailbox_drain");
    let epochs = 50u64;
    let lookahead = SimDuration::from_millis(1);
    let horizon = SimTime::ZERO + lookahead * epochs;
    let n = 4usize;
    for fanout in [100u64, 1_000] {
        let messages = fanout * n as u64 * epochs;
        g.throughput(Throughput::Elements(messages));
        g.bench_with_input(BenchmarkId::new("drain", fanout), &fanout, |b, &f| {
            b.iter(|| {
                let mut s: Vec<ChattyShard> = (0..n)
                    .map(|idx| ChattyShard {
                        idx,
                        n,
                        fanout: f,
                        received: 0,
                    })
                    .collect();
                let report = run_epochs(&mut s, lookahead, horizon, 1);
                assert_eq!(report.messages, messages);
                black_box(report.messages)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_epoch_barrier, bench_mailbox_drain);
criterion_main!(benches);
