//! The compiled-in plan corpus must keep sweeping every scheme: both
//! all-scheme ladder plans (`scheme_ladder.toml` on the classic WLAN
//! storm, `vertical.toml` on the WLAN→cellular walk) list each
//! [`Scheme::ALL`] variant, so a new scheme cannot ship without corpus
//! coverage on both topologies.

use fh_bench::planio::CORPUS;
use fh_core::Scheme;
use fh_scenarios::plan::ScenarioPlan;

fn corpus_plan(path: &str) -> ScenarioPlan {
    let (file, toml) = CORPUS
        .iter()
        .find(|(f, _)| *f == path)
        .unwrap_or_else(|| panic!("{path} missing from CORPUS"));
    ScenarioPlan::from_toml(toml, file).expect("corpus plan parses")
}

#[test]
fn all_scheme_plans_cover_every_scheme() {
    for path in ["plans/scheme_ladder.toml", "plans/vertical.toml"] {
        let plan = corpus_plan(path);
        for scheme in Scheme::ALL {
            assert!(
                plan.schemes.contains(&scheme),
                "{path} does not sweep {scheme:?} ({})",
                scheme.label()
            );
        }
        assert_eq!(
            plan.schemes.len(),
            Scheme::ALL.len(),
            "{path} sweeps something Scheme::ALL does not know"
        );
    }
}

#[test]
fn vertical_plan_is_locked_and_heterogeneous() {
    let plan = corpus_plan("plans/vertical.toml");
    assert!(
        plan.expectations.artifact_fnv1a.is_some(),
        "vertical.toml must stay hash-locked"
    );
    let cell = plan
        .topology
        .cellular
        .expect("vertical.toml crosses technologies");
    assert!(cell.radius > 0.0);
    assert_eq!(plan.topology.interfaces, 2, "make-before-break needs 2");
}
