//! `repro` — regenerate every table and figure of the evaluation.
//!
//! ```sh
//! cargo run -p fh-bench --bin repro --release                   # everything
//! cargo run -p fh-bench --bin repro --release -- --threads 4    # parallel
//! cargo run -p fh-bench --bin repro --release -- fig4.2         # one figure
//! cargo run -p fh-bench --bin repro --release -- --csv fig4.2   # CSV series
//! cargo run -p fh-bench --bin repro --release -- --trace        # + timeline
//! ```
//!
//! `--trace` additionally writes `TRACE_timeline.json`, the storm runs'
//! Chrome-trace timeline (the same bytes the `timeline` bin prints) —
//! byte-identical at any `--threads` value, like everything else here.
//!
//! `--threads N` sizes the deterministic sweep worker pool (0 = one per
//! core, default 1). Figures fan out across the pool and each sweep
//! figure additionally fans its grid points, so stdout is **byte-identical
//! at any thread count** — results are printed in figure order after all
//! runs complete. A full (unfiltered) table run also writes
//! `BENCH_sweeps.json`: per-figure wall time, simulator events, and
//! events/second, plus the thread count, for machine consumption.

use std::env;
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use fh_scenarios::sweep::{parallel_map, resolve_threads};

type FigureFn = fn(usize) -> fh_bench::FigureRun;

/// Per-figure measurement destined for `BENCH_sweeps.json`.
struct Timing {
    name: &'static str,
    wall_s: f64,
    events: u64,
}

fn render_json(threads: usize, total_wall_s: f64, timings: &[Timing]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"threads\": {threads},");
    let _ = writeln!(out, "  \"total_wall_s\": {total_wall_s:.3},");
    let total_events: u64 = timings.iter().map(|t| t.events).sum();
    let _ = writeln!(out, "  \"total_events\": {total_events},");
    let _ = writeln!(
        out,
        "  \"total_events_per_sec\": {:.0},",
        total_events as f64 / total_wall_s.max(1e-9)
    );
    let _ = writeln!(out, "  \"figures\": [");
    for (i, t) in timings.iter().enumerate() {
        let comma = if i + 1 < timings.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"wall_s\": {:.3}, \"events\": {}, \"events_per_sec\": {:.0}}}{comma}",
            t.name,
            t.wall_s,
            t.events,
            t.events as f64 / t.wall_s.max(1e-9)
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() -> ExitCode {
    let mut filters: Vec<String> = env::args().skip(1).collect();

    let mut threads = 1usize;
    if let Some(pos) = filters.iter().position(|a| a == "--threads") {
        filters.remove(pos);
        let Some(n) = filters.get(pos).and_then(|v| v.parse().ok()) else {
            eprintln!("--threads needs a number (0 = one per core)");
            return ExitCode::FAILURE;
        };
        threads = n;
        filters.remove(pos);
    }
    let threads = resolve_threads(threads);

    let mut trace = false;
    if let Some(pos) = filters.iter().position(|a| a == "--trace") {
        filters.remove(pos);
        trace = true;
    }

    if filters.first().map(String::as_str) == Some("--csv") {
        filters.remove(0);
        for figure in &filters {
            match fh_bench::csv::csv_for(figure, threads) {
                Some(csv) => print!("{csv}"),
                None => eprintln!("no CSV writer for {figure}"),
            }
        }
        return ExitCode::SUCCESS;
    }

    let figures: Vec<(&'static str, FigureFn)> = vec![
        ("fig4.2", fh_bench::fig4_2),
        ("fig4.3", fh_bench::fig4_3),
        ("fig4.4", fh_bench::fig4_4),
        ("fig4.5", fh_bench::fig4_5),
        ("fig4.6", fh_bench::fig4_6),
        ("fig4.7", fh_bench::fig4_7),
        ("fig4.8", fh_bench::fig4_8),
        ("fig4.9", fh_bench::fig4_9),
        ("fig4.10", fh_bench::fig4_10),
        ("fig4.12", fh_bench::fig4_12),
        ("fig4.13", fh_bench::fig4_13),
        ("fig4.14", fh_bench::fig4_14),
        ("threshold", fh_bench::ablation_threshold),
        ("pacing", fh_bench::ablation_pacing),
        ("background", fh_bench::ablation_background),
        ("blackout", fh_bench::ablation_blackout),
        ("signaling", fh_bench::ablation_signaling),
        ("chaos", fh_bench::chaos),
    ];
    let all = filters.is_empty();
    let selected: Vec<(&'static str, FigureFn)> = figures
        .into_iter()
        .filter(|(name, _)| all || filters.iter().any(|x| name.contains(x.as_str())))
        .collect();

    // Figure-level fan-out: independent figures run concurrently on the
    // same pool size as their internal point fan-out. Output is collected
    // and printed in figure order, so stdout does not depend on `threads`.
    let t0 = Instant::now();
    let runs = parallel_map(threads, &selected, |_, &(name, f)| {
        let start = Instant::now();
        let run = f(threads);
        let timing = Timing {
            name,
            wall_s: start.elapsed().as_secs_f64(),
            events: run.events,
        };
        (timing, run.text)
    });
    let total_wall_s = t0.elapsed().as_secs_f64();

    for (timing, text) in &runs {
        println!("==== {} ====", timing.name);
        println!("{text}");
    }

    if all {
        let timings: Vec<Timing> = runs.into_iter().map(|(t, _)| t).collect();
        let json = render_json(threads, total_wall_s, &timings);
        match std::fs::write("BENCH_sweeps.json", &json) {
            Ok(()) => eprintln!("wrote BENCH_sweeps.json ({threads} threads, {total_wall_s:.1}s)"),
            Err(e) => eprintln!("could not write BENCH_sweeps.json: {e}"),
        }
    }

    // `--trace`: additionally export the storm runs as a Chrome-trace
    // timeline (the `timeline` bin's bytes, written to a file). Stdout is
    // untouched, so the figure tables stay byte-identical with and
    // without the flag.
    if trace {
        let json = fh_bench::csv::timeline_json_with_seed(fh_bench::params::SEED, threads);
        match std::fs::write("TRACE_timeline.json", &json) {
            Ok(()) => eprintln!("wrote TRACE_timeline.json ({threads} threads)"),
            Err(e) => eprintln!("could not write TRACE_timeline.json: {e}"),
        }
    }
    ExitCode::SUCCESS
}
