//! `repro` — regenerate every table and figure of the evaluation.
//!
//! ```sh
//! cargo run -p fh-bench --bin repro --release                   # everything
//! cargo run -p fh-bench --bin repro --release -- fig4.2         # one figure
//! cargo run -p fh-bench --bin repro --release -- --csv fig4.2   # CSV series
//! ```

use std::env;

type Figure = (&'static str, fn() -> String);

fn main() {
    let mut filters: Vec<String> = env::args().skip(1).collect();
    if filters.first().map(String::as_str) == Some("--csv") {
        filters.remove(0);
        for figure in &filters {
            match fh_bench::csv::csv_for(figure) {
                Some(csv) => print!("{csv}"),
                None => eprintln!("no CSV writer for {figure}"),
            }
        }
        return;
    }
    let figures: Vec<Figure> = vec![
        ("fig4.2", fh_bench::fig4_2),
        ("fig4.3", fh_bench::fig4_3),
        ("fig4.4", fh_bench::fig4_4),
        ("fig4.5", fh_bench::fig4_5),
        ("fig4.6", fh_bench::fig4_6),
        ("fig4.7", fh_bench::fig4_7),
        ("fig4.8", fh_bench::fig4_8),
        ("fig4.9", fh_bench::fig4_9),
        ("fig4.10", fh_bench::fig4_10),
        ("fig4.12", fh_bench::fig4_12),
        ("fig4.13", fh_bench::fig4_13),
        ("fig4.14", fh_bench::fig4_14),
        ("threshold", fh_bench::ablation_threshold),
        ("pacing", fh_bench::ablation_pacing),
        ("background", fh_bench::ablation_background),
        ("blackout", fh_bench::ablation_blackout),
        ("signaling", fh_bench::ablation_signaling),
    ];
    for (name, f) in figures {
        if !filters.is_empty() && !filters.iter().any(|x| name.contains(x.as_str())) {
            continue;
        }
        println!("==== {name} ====");
        println!("{}", f());
    }
}
