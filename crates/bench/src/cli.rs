//! Shared CLI driver for the seeded determinism bins.
//!
//! `chaos`, `storm` and `timeline` all speak the same dialect —
//! `--seed N --threads N` — because CI runs each of them at several
//! seeds and `cmp`s the bytes across thread counts. The parsing and
//! error reporting live here once; each bin supplies only its renderer.

use std::env;
use std::process::ExitCode;

use fh_scenarios::sweep::resolve_threads;

/// Arguments of a seeded determinism bin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeededArgs {
    /// Base RNG seed (default 2003, the thesis seed).
    pub seed: u64,
    /// Worker-pool size, already resolved (`0` → one per core).
    pub threads: usize,
}

/// Parses `--seed N --threads N` from an argument iterator (without the
/// program name). Unknown arguments and missing values are errors.
///
/// # Errors
///
/// Returns the message to print on stderr.
pub fn parse_seeded_args<I>(args: I) -> Result<SeededArgs, String>
where
    I: IntoIterator<Item = String>,
{
    let mut seed = crate::params::SEED;
    let mut threads = 1usize;
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        let value = |a: Option<String>| a.and_then(|v| v.parse::<u64>().ok());
        match arg.as_str() {
            "--seed" => match value(args.next()) {
                Some(v) => seed = v,
                None => return Err("--seed needs a number".to_owned()),
            },
            "--threads" => match value(args.next()) {
                Some(v) => threads = v as usize,
                None => return Err("--threads needs a number (0 = one per core)".to_owned()),
            },
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(SeededArgs {
        seed,
        threads: resolve_threads(threads),
    })
}

/// The whole main loop of a seeded determinism bin: parse the process
/// arguments, call `render(seed, threads)`, print the bytes verbatim.
pub fn run_seeded(render: impl Fn(u64, usize) -> String) -> ExitCode {
    match parse_seeded_args(env::args().skip(1)) {
        Ok(args) => {
            print!("{}", render(args.seed, args.threads));
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

/// The whole main loop of a corpus-plan bin: parse `--seed`/`--threads`,
/// run the compiled-in plan, print its artifact verbatim. An expectation
/// violation prints the structured failure report on stderr and exits
/// nonzero.
pub fn run_seeded_plan(toml: &str, file: &str) -> ExitCode {
    match parse_seeded_args(env::args().skip(1)) {
        Ok(args) => match crate::planio::run_corpus_plan(toml, file, args.seed, args.threads) {
            Ok(artifact) => {
                print!("{artifact}");
                ExitCode::SUCCESS
            }
            Err(report) => {
                eprint!("{report}");
                ExitCode::FAILURE
            }
        },
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<SeededArgs, String> {
        parse_seeded_args(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn defaults_are_the_thesis_seed_and_one_thread() {
        assert_eq!(
            parse(&[]),
            Ok(SeededArgs {
                seed: 2003,
                threads: 1
            })
        );
    }

    #[test]
    fn explicit_seed_and_threads_parse() {
        assert_eq!(
            parse(&["--seed", "7", "--threads", "4"]),
            Ok(SeededArgs {
                seed: 7,
                threads: 4
            })
        );
    }

    #[test]
    fn zero_threads_resolves_to_cores() {
        let args = parse(&["--threads", "0"]).expect("parses");
        assert!(args.threads >= 1);
    }

    #[test]
    fn missing_values_and_unknown_flags_are_errors() {
        assert!(parse(&["--seed"]).is_err());
        assert!(parse(&["--threads", "x"]).is_err());
        assert!(parse(&["--frobnicate"]).is_err());
    }
}
