//! `chaos` — run the chaos sweep for an explicit seed and print it as CSV.
//!
//! ```sh
//! cargo run -p fh-bench --release --bin chaos -- --seed 2003 --threads 4
//! ```
//!
//! The CI chaos-determinism job runs this at several seeds and `cmp`s the
//! bytes across `--threads` values: the fault streams, retransmission
//! schedules and handover outcomes must not depend on the worker count.

use std::process::ExitCode;

fn main() -> ExitCode {
    fh_bench::cli::run_seeded(fh_bench::csv::chaos_csv_with_seed)
}
