//! `chaos` — run the chaos corpus plan for an explicit seed and print it
//! as CSV.
//!
//! ```sh
//! cargo run -p fh-bench --release --bin chaos -- --seed 2003 --threads 4
//! ```
//!
//! A thin wrapper over `plans/chaos.toml` (compiled in): the plan engine
//! runs the sweep and the bytes printed are its rendered artifact,
//! identical to the pre-plan implementation. The CI chaos-determinism
//! job runs this at several seeds and `cmp`s the bytes across
//! `--threads` values: the fault streams, retransmission schedules and
//! handover outcomes must not depend on the worker count. An
//! expectation violation (conservation, artifact lock) prints the
//! structured failure report and exits nonzero.

use std::process::ExitCode;

fn main() -> ExitCode {
    fh_bench::cli::run_seeded_plan(include_str!("../../plans/chaos.toml"), "plans/chaos.toml")
}
