//! `timeline` — export the storm runs as a Chrome-trace timeline.
//!
//! ```sh
//! cargo run -p fh-bench --release --bin timeline -- --seed 2003 --threads 4 > storm.json
//! ```
//!
//! A thin wrapper over `plans/timeline.toml` (compiled in). The output
//! is a trace-event-format JSON array, loadable in Perfetto or
//! `chrome://tracing`: one `pid` per storm point (size × scheme), one
//! track per simulated actor, handover attempts as spans with per-phase
//! marks, and buffer/signaling/fault activity as instants. The plan's
//! expectations demand an intact flight recorder (no ring wrap) and a
//! clean run; a violation prints the structured failure report and exits
//! nonzero. The CI trace-determinism job runs this at one seed and
//! `cmp`s the bytes across `--threads` values.

use std::process::ExitCode;

fn main() -> ExitCode {
    fh_bench::cli::run_seeded_plan(
        include_str!("../../plans/timeline.toml"),
        "plans/timeline.toml",
    )
}
