//! `timeline` — export the storm runs as a Chrome-trace timeline.
//!
//! ```sh
//! cargo run -p fh-bench --release --bin timeline -- --seed 2003 --threads 4 > storm.json
//! ```
//!
//! The output is a trace-event-format JSON array, loadable in Perfetto or
//! `chrome://tracing`: one `pid` per storm point (size × scheme), one
//! track per simulated actor, handover attempts as spans with per-phase
//! marks, and buffer/signaling/fault activity as instants. The CI
//! trace-determinism job runs this at one seed and `cmp`s the bytes
//! across `--threads` values: the exported timeline must not depend on
//! the worker count.

use std::process::ExitCode;

fn main() -> ExitCode {
    fh_bench::cli::run_seeded(fh_bench::csv::timeline_json_with_seed)
}
