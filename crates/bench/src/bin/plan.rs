//! `plan` — the scenario-plan driver: run a TOML plan, the compiled-in
//! corpus, or a seeded fuzz battery.
//!
//! ```sh
//! # Run one plan file and print its artifact (CSV or Chrome-trace JSON).
//! cargo run -p fh-bench --release --bin plan -- plans/storm.toml --threads 4
//!
//! # Run the whole compiled-in corpus; one status line per plan.
//! cargo run -p fh-bench --release --bin plan -- --corpus --threads 4
//!
//! # Run 100 fuzzed plans derived from seed 7.
//! cargo run -p fh-bench --release --bin plan -- --fuzz 100 --seed 7
//! ```
//!
//! Every mode prints thread-invariant bytes — CI `cmp`s the corpus and
//! fuzz outputs across `--threads` values. Any expectation violation
//! (packet conservation, leaks, recorder wrap, per-class bounds,
//! artifact hash locks, cross-thread artifact divergence in fuzz mode)
//! prints a structured failure report on stderr and exits nonzero, as
//! does a malformed plan file.

use std::env;
use std::fs;
use std::process::ExitCode;

use fh_bench::planio;
use fh_scenarios::sweep::resolve_threads;

const USAGE: &str = "usage: plan <file.toml> | --corpus | --fuzz N  [--seed N] [--threads N]";

enum Mode {
    File(String),
    Corpus,
    Fuzz(u64),
}

fn parse(args: impl IntoIterator<Item = String>) -> Result<(Mode, u64, usize), String> {
    let mut mode = None;
    let mut seed = 2003u64;
    let mut threads = 1usize;
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        let number = |a: Option<String>| a.and_then(|v| v.parse::<u64>().ok());
        match arg.as_str() {
            "--corpus" => mode = Some(Mode::Corpus),
            "--fuzz" => match number(args.next()) {
                Some(n) => mode = Some(Mode::Fuzz(n)),
                None => return Err("--fuzz needs a plan count".to_owned()),
            },
            "--seed" => match number(args.next()) {
                Some(v) => seed = v,
                None => return Err("--seed needs a number".to_owned()),
            },
            "--threads" => match number(args.next()) {
                Some(v) => threads = v as usize,
                None => return Err("--threads needs a number (0 = one per core)".to_owned()),
            },
            other if !other.starts_with('-') && mode.is_none() => {
                mode = Some(Mode::File(other.to_owned()));
            }
            other => return Err(format!("unknown argument: {other}\n{USAGE}")),
        }
    }
    let mode = mode.ok_or_else(|| USAGE.to_owned())?;
    Ok((mode, seed, resolve_threads(threads)))
}

fn main() -> ExitCode {
    let (mode, seed, threads) = match parse(env::args().skip(1)) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let result = match mode {
        Mode::File(path) => match fs::read_to_string(&path) {
            Ok(toml) => planio::run_corpus_plan(&toml, &path, seed, threads),
            Err(e) => Err(format!("{path}: {e}\n")),
        },
        Mode::Corpus => planio::run_corpus(seed, threads),
        Mode::Fuzz(count) => planio::run_fuzz(count, seed, threads),
    };
    match result {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(report) => {
            eprint!("{report}");
            ExitCode::FAILURE
        }
    }
}
