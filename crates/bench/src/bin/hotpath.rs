//! `hotpath` — single-run hot-path throughput gauge.
//!
//! Runs the Fig 4.2 workload (the 60-point scheme × host-count grid of
//! `buffer_utilization`, the hottest sustained workload in the suite)
//! once per event-queue backend, asserts the two backends produce the
//! identical series, and reports events/second:
//!
//! ```sh
//! cargo run -p fh-bench --bin hotpath --release                # measure, print JSON
//! cargo run -p fh-bench --bin hotpath --release -- --check BENCH_hotpath.json
//! ```
//!
//! `--check FILE` re-measures and fails (exit 1) if the calendar-queue
//! throughput regressed more than 10% below `budget_events_per_sec` in
//! FILE — the CI hot-path regression gate. The committed
//! `BENCH_hotpath.json` carries the reference machine's numbers plus the
//! analysis notes required by the optimization issue; regenerate it by
//! redirecting this binary's stdout.

use std::env;
use std::process::ExitCode;
use std::time::Instant;

use fh_scenarios::experiments::{
    buffer_utilization_with_queue, BufferUtilizationParams, BufferUtilizationResult,
};
use fh_sim::QueueKind;

/// One timed pass over the Fig 4.2 grid.
struct Measurement {
    events: u64,
    wall_s: f64,
    result: BufferUtilizationResult,
}

impl Measurement {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_s.max(1e-9)
    }
}

fn measure(kind: QueueKind) -> Measurement {
    let start = Instant::now();
    let result = buffer_utilization_with_queue(BufferUtilizationParams::default(), 1, kind);
    let wall_s = start.elapsed().as_secs_f64();
    Measurement {
        events: result.events,
        wall_s,
        result,
    }
}

/// Extracts `"budget_events_per_sec": <number>` from a committed
/// BENCH_hotpath.json without a JSON dependency.
fn read_budget(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let key = "\"budget_events_per_sec\":";
    let at = text.find(key)? + key.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let check_path = match args.as_slice() {
        [] => None,
        [flag, path] if flag == "--check" => Some(path.clone()),
        _ => {
            eprintln!("usage: hotpath [--check BENCH_hotpath.json]");
            return ExitCode::FAILURE;
        }
    };

    // Warm-up pass so neither backend pays first-touch page faults.
    let _ = measure(QueueKind::Heap);

    let heap = measure(QueueKind::Heap);
    let calendar = measure(QueueKind::Calendar);

    // The whole point of the optimization is that it is invisible: the
    // calendar backend must reproduce the heap's series bit for bit.
    assert_eq!(
        heap.result.series, calendar.result.series,
        "queue backends disagree on Fig 4.2 — determinism broken"
    );
    assert_eq!(heap.events, calendar.events);

    let best = heap.events_per_sec().max(calendar.events_per_sec());
    eprintln!(
        "fig4.2 grid: {} events | heap {:.2}M ev/s | calendar {:.2}M ev/s",
        heap.events,
        heap.events_per_sec() / 1e6,
        calendar.events_per_sec() / 1e6,
    );

    if let Some(path) = check_path {
        let Some(budget) = read_budget(&path) else {
            eprintln!("could not read budget_events_per_sec from {path}");
            return ExitCode::FAILURE;
        };
        let floor = budget * 0.9;
        if best < floor {
            eprintln!("hot-path regression: {best:.0} ev/s < 90% of budget {budget:.0} ev/s");
            return ExitCode::FAILURE;
        }
        eprintln!("hot path within budget: {best:.0} ev/s >= {floor:.0} ev/s floor");
        return ExitCode::SUCCESS;
    }

    println!("{{");
    println!("  \"workload\": \"fig4.2 buffer_utilization grid, default params, threads 1\",");
    println!("  \"events\": {},", heap.events);
    println!("  \"heap_events_per_sec\": {:.0},", heap.events_per_sec());
    println!(
        "  \"calendar_events_per_sec\": {:.0},",
        calendar.events_per_sec()
    );
    println!("  \"budget_events_per_sec\": {best:.0}");
    println!("}}");
    ExitCode::SUCCESS
}
