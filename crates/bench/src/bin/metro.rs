//! `metro` — scaling gauge for the sharded multi-domain kernel.
//!
//! Sweeps the metro deployment from 1k to 100k hosts, once on the
//! single-queue kernel (1 domain) and once sharded across 4 MAP
//! domains, and reports events/second plus the epoch executor's timing
//! decomposition:
//!
//! ```sh
//! cargo run -p fh-bench --bin metro --release                 # measure, print JSON
//! cargo run -p fh-bench --bin metro --release -- --check BENCH_metro.json
//! ```
//!
//! **Methodology.** The reference container has a single CPU core, so
//! sharded wall-clock equals sequential wall-clock there; parallel
//! speedup cannot be observed directly. The epoch executor therefore
//! measures its own critical path: per epoch it records every shard's
//! advance time, summing the *total* (`busy` — what a single-queue
//! execution pays) and the *max* (`critical` — what gates the barrier).
//! `busy / (critical + exchange)` is the speedup an ideal one-core-per-
//! shard machine observes, measured from the actual run rather than
//! modelled. `effective_events_per_sec` is events over that critical
//! path. Timing rows run on the **sequential schedule** (`threads = 1`)
//! so per-shard timers are never polluted by timeslicing several workers
//! over one core; the determinism contract makes this sound — the
//! artifact is byte-identical at any thread count (asserted here across
//! 1/2/8), so the sequential run *is* the sharded run, merely
//! rescheduled.
//!
//! `--check FILE` re-measures and fails (exit 1) if the artifacts
//! diverge across thread counts (10k hosts), if the 4-domain critical-
//! path speedup falls below 3.0 at 100k hosts, or if best-of-3
//! single-queue throughput regressed more than 20% below
//! `budget_events_per_sec` in FILE (wide margin: shared-container
//! scheduler noise is ±15% run-to-run).

use std::env;
use std::process::ExitCode;
use std::time::Instant;

use fh_metro::{run, MetroConfig, MetroResults};

/// One timed metro run.
struct Measurement {
    hosts: u32,
    domains: u32,
    threads: usize,
    results: MetroResults,
    wall_s: f64,
}

impl Measurement {
    fn events_per_sec(&self) -> f64 {
        self.results.events_processed as f64 / self.wall_s.max(1e-9)
    }

    /// Events over the measured critical path — the throughput an ideal
    /// one-core-per-shard machine observes for this exact schedule.
    fn effective_events_per_sec(&self) -> f64 {
        let critical = (self.results.report.critical + self.results.report.exchange).as_secs_f64();
        self.results.events_processed as f64 / critical.max(1e-9)
    }

    fn json_row(&self) -> String {
        format!(
            "    {{\"hosts\": {}, \"domains\": {}, \"threads\": {}, \"events\": {}, \
             \"wall_s\": {:.3}, \"events_per_sec\": {:.0}, \
             \"effective_events_per_sec\": {:.0}, \"critical_path_speedup\": {:.2}, \
             \"epochs\": {}, \"messages\": {}}}",
            self.hosts,
            self.domains,
            self.threads,
            self.results.events_processed,
            self.wall_s,
            self.events_per_sec(),
            self.effective_events_per_sec(),
            self.results.report.critical_path_speedup(),
            self.results.report.epochs,
            self.results.report.messages,
        )
    }
}

fn config(hosts: u32, domains: u32) -> MetroConfig {
    MetroConfig {
        hosts,
        domains,
        ..MetroConfig::default()
    }
}

fn measure(hosts: u32, domains: u32, threads: usize) -> Measurement {
    let cfg = config(hosts, domains);
    let start = Instant::now();
    let results = run(&cfg, threads);
    let wall_s = start.elapsed().as_secs_f64();
    Measurement {
        hosts,
        domains,
        threads,
        results,
        wall_s,
    }
}

/// Best (fastest wall-clock) of `n` identical runs. Scheduler noise on
/// a shared container only ever slows a run down, so the max is the
/// least-noisy estimate of what the code can do.
fn measure_best_of(n: usize, hosts: u32, domains: u32, threads: usize) -> Measurement {
    let mut best = measure(hosts, domains, threads);
    for _ in 1..n {
        let m = measure(hosts, domains, threads);
        if m.wall_s < best.wall_s {
            best = m;
        }
    }
    best
}

/// Asserts the 4-domain artifact is byte-identical at threads 1, 2, 8.
fn assert_thread_identity(hosts: u32) {
    let base = run(&config(hosts, 4), 1).artifact();
    for threads in [2usize, 8] {
        let got = run(&config(hosts, 4), threads).artifact();
        assert_eq!(
            base, got,
            "metro artifact diverged at {hosts} hosts, threads {threads}"
        );
    }
}

/// Extracts `"budget_events_per_sec": <number>` from a committed
/// BENCH_metro.json without a JSON dependency.
fn read_budget(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let key = "\"budget_events_per_sec\":";
    let at = text.find(key)? + key.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

const SPEEDUP_FLOOR: f64 = 3.0;

/// Throughput gate margin: best-of-3 must clear this fraction of the
/// committed budget. Wide enough to absorb shared-container scheduler
/// noise (observed ±15% run-to-run), tight enough to catch an
/// algorithmic regression.
const THROUGHPUT_MARGIN: f64 = 0.8;
const BEST_OF: usize = 3;

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let check_path = match args.as_slice() {
        [] => None,
        [flag, path] if flag == "--check" => Some(path.clone()),
        _ => {
            eprintln!("usage: metro [--check BENCH_metro.json]");
            return ExitCode::FAILURE;
        }
    };

    if let Some(path) = check_path {
        let Some(budget) = read_budget(&path) else {
            eprintln!("could not read budget_events_per_sec from {path}");
            return ExitCode::FAILURE;
        };
        assert_thread_identity(10_000);
        eprintln!("identity: artifacts byte-identical at threads 1/2/8 (10k hosts, 4 domains)");
        let single = measure_best_of(BEST_OF, 10_000, 1, 1);
        let sharded = measure(100_000, 4, 1);
        let speedup = sharded.results.report.critical_path_speedup();
        if speedup < SPEEDUP_FLOOR {
            eprintln!(
                "scaling regression: critical-path speedup {speedup:.2} < {SPEEDUP_FLOOR} \
                 at 4 domains / 100k hosts"
            );
            return ExitCode::FAILURE;
        }
        eprintln!("speedup: {speedup:.2}x critical-path at 4 domains (floor {SPEEDUP_FLOOR})");
        let floor = budget * THROUGHPUT_MARGIN;
        let got = single.events_per_sec();
        if got < floor {
            eprintln!(
                "throughput regression: best-of-{BEST_OF} {got:.0} ev/s single-queue < \
                 {:.0}% of budget {budget:.0}",
                THROUGHPUT_MARGIN * 100.0
            );
            return ExitCode::FAILURE;
        }
        eprintln!("throughput within budget: {got:.0} ev/s >= {floor:.0} ev/s floor");
        return ExitCode::SUCCESS;
    }

    // Warm-up so the first measured run pays no first-touch faults.
    let _ = measure(1_000, 4, 1);
    assert_thread_identity(10_000);

    // Best-of-3 per row: the committed numbers should reflect the code,
    // not whatever else the container was doing that second.
    let mut rows = Vec::new();
    for hosts in [1_000u32, 10_000, 100_000] {
        rows.push(measure_best_of(BEST_OF, hosts, 1, 1));
        rows.push(measure_best_of(BEST_OF, hosts, 4, 1));
    }
    for m in &rows {
        eprintln!(
            "{:>7} hosts x {} domain(s): {:>9} events | {:>6.2}M ev/s wall | \
             {:>6.2}M ev/s effective | speedup {:.2}x",
            m.hosts,
            m.domains,
            m.results.events_processed,
            m.events_per_sec() / 1e6,
            m.effective_events_per_sec() / 1e6,
            m.results.report.critical_path_speedup(),
        );
    }

    // The committed budget is the single-queue 10k-host throughput —
    // the baseline the sharded kernel is measured against.
    let budget = rows
        .iter()
        .find(|m| m.hosts == 10_000 && m.domains == 1)
        .map(Measurement::events_per_sec)
        .unwrap_or(0.0);
    let speedup = rows
        .iter()
        .find(|m| m.hosts == 100_000 && m.domains == 4)
        .map(|m| m.results.report.critical_path_speedup())
        .unwrap_or(0.0);

    println!("{{");
    println!(
        "  \"workload\": \"metro deployment sweep, 1k-100k hosts, 1 vs 4 domains, \
         default MetroConfig\","
    );
    println!(
        "  \"methodology\": \"single-core reference container: wall-clock cannot show \
         parallel speedup, so the epoch executor measures its own critical path \
         (busy = sum of shard-advance time, critical = per-epoch max); \
         critical_path_speedup = busy / (critical + exchange) is the measured speedup \
         ceiling on one core per shard. Timing rows run the sequential schedule \
         (threads 1) so per-shard timers are never polluted by timeslicing; the \
         artifact is asserted byte-identical at threads 1/2/8 before any timing is \
         reported, so the sequential run is the sharded run, merely rescheduled.\","
    );
    println!(
        "  \"identity\": \"artifacts byte-identical at threads 1/2/8 (10k hosts, 4 domains)\","
    );
    println!("  \"rows\": [");
    for (i, m) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        println!("{}{comma}", m.json_row());
    }
    println!("  ],");
    println!("  \"speedup_at_4_domains_100k\": {speedup:.2},");
    println!("  \"speedup_floor\": {SPEEDUP_FLOOR},");
    println!("  \"budget_events_per_sec\": {budget:.0}");
    println!("}}");
    ExitCode::SUCCESS
}
