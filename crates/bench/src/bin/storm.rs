//! `storm` — run the handover-storm sweep for an explicit seed and print
//! it as CSV.
//!
//! ```sh
//! cargo run -p fh-bench --release --bin storm -- --seed 2003 --threads 4
//! ```
//!
//! Every point runs with soft-state lifetimes armed and passes the
//! packet-conservation and resource-leak audits (a leak panics the run).
//! The CI storm-leak-audit job runs this at several seeds and `cmp`s the
//! bytes across `--threads` values: storm outcomes and reclamation counts
//! must not depend on the worker count.

use std::env;
use std::process::ExitCode;

use fh_scenarios::sweep::resolve_threads;

fn main() -> ExitCode {
    let mut seed = 2003u64;
    let mut threads = 1usize;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        let value = |a: Option<String>| a.and_then(|v| v.parse::<u64>().ok());
        match arg.as_str() {
            "--seed" => match value(args.next()) {
                Some(v) => seed = v,
                None => {
                    eprintln!("--seed needs a number");
                    return ExitCode::FAILURE;
                }
            },
            "--threads" => match value(args.next()) {
                Some(v) => threads = v as usize,
                None => {
                    eprintln!("--threads needs a number (0 = one per core)");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    let threads = resolve_threads(threads);
    print!("{}", fh_bench::csv::storm_csv_with_seed(seed, threads));
    ExitCode::SUCCESS
}
