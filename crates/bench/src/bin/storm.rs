//! `storm` — run the handover-storm sweep for an explicit seed and print
//! it as CSV.
//!
//! ```sh
//! cargo run -p fh-bench --release --bin storm -- --seed 2003 --threads 4
//! ```
//!
//! Every point runs with soft-state lifetimes armed and passes the
//! packet-conservation and resource-leak audits (a leak panics the run).
//! The CI storm-leak-audit job runs this at several seeds and `cmp`s the
//! bytes across `--threads` values: storm outcomes and reclamation counts
//! must not depend on the worker count.

use std::process::ExitCode;

fn main() -> ExitCode {
    fh_bench::cli::run_seeded(fh_bench::csv::storm_csv_with_seed)
}
