//! `storm` — run the handover-storm corpus plan for an explicit seed and
//! print it as CSV.
//!
//! ```sh
//! cargo run -p fh-bench --release --bin storm -- --seed 2003 --threads 4
//! ```
//!
//! A thin wrapper over `plans/storm.toml` (compiled in): the plan engine
//! runs the sweep and the bytes printed are its rendered artifact,
//! identical to the pre-plan implementation. Every point runs with
//! soft-state lifetimes armed; the plan's expectations demand packet
//! conservation and a clean resource-leak report, and a violation prints
//! the structured failure report and exits nonzero. The CI
//! storm-leak-audit job runs this at several seeds and `cmp`s the bytes
//! across `--threads` values.

use std::process::ExitCode;

fn main() -> ExitCode {
    fh_bench::cli::run_seeded_plan(include_str!("../../plans/storm.toml"), "plans/storm.toml")
}
