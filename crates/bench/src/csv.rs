//! CSV rendering of experiment results, for plotting.
//!
//! `repro --csv <figure>` emits the figure's series as comma-separated
//! values with a header row — ready for gnuplot/matplotlib — instead of
//! the human-readable table. Every writer goes through the shared
//! [`CsvTable`] builder from `fh-telemetry`, which enforces the column
//! discipline once instead of per figure.

use fh_core::Scheme;
use fh_scenarios::experiments::{self, BufferUtilizationParams, FIG_4_6_RATES};
use fh_scenarios::plan;
use fh_sim::SimDuration;
use fh_telemetry::{Cell, CsvTable};

use crate::params;

/// Fig 4.2 as CSV: `mhs,nar,par,dual,fh`.
#[must_use]
pub fn fig4_2_csv(threads: usize) -> String {
    let series =
        experiments::buffer_utilization(BufferUtilizationParams::default(), threads).series;
    let labels: Vec<String> = series.iter().map(|s| s.label.to_lowercase()).collect();
    let mut header: Vec<&str> = vec!["mhs"];
    header.extend(labels.iter().map(String::as_str));
    let mut table = CsvTable::new(&header);
    for i in 0..series[0].points.len() {
        let mut row: Vec<Cell<'_>> = vec![series[0].points[i].0.into()];
        row.extend(series.iter().map(|s| Cell::from(s.points[i].1)));
        table.row(&row);
    }
    table.finish()
}

/// Figs 4.3–4.5 as CSV: `handoff,f1_rt,f2_hp,f3_be` for the given scheme.
#[must_use]
pub fn qos_csv(scheme: Scheme, capacity: usize) -> String {
    let r = experiments::qos_drops(
        scheme,
        capacity,
        params::REQUEST,
        params::HANDOFFS,
        params::SEED,
    );
    let mut table = CsvTable::new(&["handoff", "f1_rt", "f2_hp", "f3_be"]);
    for h in 0..r.drops[0].len() {
        table.row(&[
            (h + 1).into(),
            r.drops[0][h].into(),
            r.drops[1][h].into(),
            r.drops[2][h].into(),
        ]);
    }
    table.finish()
}

/// Fig 4.6 as CSV: `kbps,f1_rt,f2_hp,f3_be`.
#[must_use]
pub fn fig4_6_csv(threads: usize) -> String {
    let r = experiments::rate_sweep(
        &FIG_4_6_RATES,
        params::PROPOSED_CAPACITY,
        params::REQUEST,
        params::SEED,
        threads,
    );
    let mut table = CsvTable::new(&["kbps", "f1_rt", "f2_hp", "f3_be"]);
    for (i, &rate) in r.rates_kbps.iter().enumerate() {
        table.row(&[
            rate.into(),
            r.drops[0][i].into(),
            r.drops[1][i].into(),
            r.drops[2][i].into(),
        ]);
    }
    table.finish()
}

/// Figs 4.7–4.10 as CSV: `seq,f1_rt_ms,f2_hp_ms,f3_be_ms` (empty cell =
/// packet lost).
#[must_use]
pub fn delay_csv(scheme: Scheme, capacity: usize, link_ms: u64) -> String {
    let r = experiments::delay_trace(
        scheme,
        capacity,
        params::REQUEST,
        SimDuration::from_millis(link_ms),
        params::SEED,
    );
    let mut table = CsvTable::new(&["seq", "f1_rt_ms", "f2_hp_ms", "f3_be_ms"]);
    let max_seq = r
        .series
        .iter()
        .flat_map(|s| s.iter().map(|&(seq, _)| seq))
        .max()
        .unwrap_or(0);
    for seq in 0..=max_seq {
        let mut row: Vec<Cell<'_>> = vec![seq.into()];
        for k in 0..3 {
            row.push(match r.series[k].iter().find(|&&(s, _)| s == seq) {
                Some(&(_, d)) => Cell::Fixed(d * 1e3, 3),
                None => Cell::Empty,
            });
        }
        table.row(&row);
    }
    table.finish()
}

/// Fig 4.14 as CSV: `t_s,buffered_mbps,unbuffered_mbps`.
#[must_use]
pub fn fig4_14_csv() -> String {
    let with = experiments::tcp_l2_handoff(true, params::SEED);
    let without = experiments::tcp_l2_handoff(false, params::SEED);
    let mut table = CsvTable::new(&["t_s", "buffered_mbps", "unbuffered_mbps"]);
    for (i, &(t, mbps)) in with.throughput.iter().enumerate() {
        let none = without.throughput.get(i).map_or(0.0, |&(_, m)| m);
        table.row(&[
            Cell::Fixed(t, 1),
            Cell::Fixed(mbps, 3),
            Cell::Fixed(none, 3),
        ]);
    }
    table.finish()
}

/// Chaos sweep as CSV: one row per injected loss probability.
#[must_use]
pub fn chaos_csv(threads: usize) -> String {
    chaos_csv_with_seed(params::SEED, threads)
}

/// Chaos sweep as CSV for an explicit seed — the CI chaos-determinism
/// job compares these bytes across thread counts, per seed. Rendering is
/// the plan engine's: this *is* [`plan::reference_chaos`] run under
/// `seed`.
#[must_use]
pub fn chaos_csv_with_seed(seed: u64, threads: usize) -> String {
    plan::run_plan(&plan::reference_chaos().with_seed(seed), threads)
        .expect_clean()
        .artifact
}

/// Storm sweep as CSV: one row per storm size, both schemes side by side.
#[must_use]
pub fn storm_csv(threads: usize) -> String {
    storm_csv_with_seed(params::SEED, threads)
}

/// Storm sweep as CSV for an explicit seed — the CI storm-leak-audit job
/// compares these bytes across thread counts, per seed. Every row's run
/// passed the packet-conservation and resource-leak audits (they panic
/// otherwise), so these bytes double as the audit's green light.
#[must_use]
pub fn storm_csv_with_seed(seed: u64, threads: usize) -> String {
    plan::run_plan(&plan::reference_storm().with_seed(seed), threads)
        .expect_clean()
        .artifact
}

/// The storm timeline as Chrome-trace JSON for an explicit seed — the CI
/// trace-determinism job compares these bytes across thread counts.
#[must_use]
pub fn timeline_json_with_seed(seed: u64, threads: usize) -> String {
    plan::run_plan(&plan::reference_timeline().with_seed(seed), threads)
        .expect_clean()
        .artifact
}

/// Resolves a CSV writer by figure id, fanning sweep points across
/// `threads` workers (the CSV bytes are identical at any value).
#[must_use]
pub fn csv_for(figure: &str, threads: usize) -> Option<String> {
    match figure {
        "fig4.2" => Some(fig4_2_csv(threads)),
        "fig4.3" => Some(qos_csv(Scheme::NarOnly, params::FH_CAPACITY)),
        "fig4.4" => Some(qos_csv(
            Scheme::Dual { classify: false },
            params::PROPOSED_CAPACITY,
        )),
        "fig4.5" => Some(qos_csv(
            Scheme::Dual { classify: true },
            params::PROPOSED_CAPACITY,
        )),
        "fig4.6" => Some(fig4_6_csv(threads)),
        "fig4.7" => Some(delay_csv(Scheme::NarOnly, params::FH_CAPACITY, 2)),
        "fig4.8" => Some(delay_csv(
            Scheme::Dual { classify: false },
            params::PROPOSED_CAPACITY,
            2,
        )),
        "fig4.9" => Some(delay_csv(
            Scheme::Dual { classify: true },
            params::PROPOSED_CAPACITY,
            2,
        )),
        "fig4.10" => Some(delay_csv(
            Scheme::Dual { classify: true },
            params::PROPOSED_CAPACITY,
            50,
        )),
        "fig4.14" => Some(fig4_14_csv()),
        "chaos" => Some(chaos_csv(threads)),
        "storm" => Some(storm_csv(threads)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_2_csv_is_well_formed() {
        let csv = fig4_2_csv(2);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("mhs,nar,par,dual,fh"));
        let first = lines.next().expect("data row");
        assert_eq!(first.split(',').count(), 5);
        assert_eq!(csv.lines().count(), 21, "header + 20 rows");
    }

    #[test]
    fn unknown_figure_yields_none() {
        assert!(csv_for("fig9.9", 1).is_none());
        assert!(csv_for("fig4.2", 2).is_some());
    }
}
