//! Plan-driver plumbing shared by the `plan` bin and the corpus bins.
//!
//! The scenario-plan corpus lives in `crates/bench/plans/` and is
//! compiled into the binaries with `include_str!`, so the drivers need no
//! filesystem access to run it and CI exercises exactly the bytes under
//! version control. Three corpus plans (`chaos`, `storm`, `timeline`)
//! *are* the legacy determinism bins — a unit test pins each of them to
//! its reference constructor in `fh_scenarios::plan`, and their artifact
//! hash locks are pinned to the golden bytes in `tests/golden/`.
//!
//! Everything here prints thread-invariant bytes: CI `cmp`s the corpus
//! and fuzz outputs across `--threads` values the same way it compares
//! the figure CSVs.

use std::fmt::Write as _;

use fh_scenarios::plan::{fuzz_plan, run_plan, PlanOutcome, ScenarioPlan};
use fh_telemetry::report::fnv1a64_hex;

/// The compiled-in plan corpus: `(display path, TOML source)`.
pub const CORPUS: [(&str, &str); 15] = [
    ("plans/chaos.toml", include_str!("../plans/chaos.toml")),
    ("plans/storm.toml", include_str!("../plans/storm.toml")),
    (
        "plans/timeline.toml",
        include_str!("../plans/timeline.toml"),
    ),
    (
        "plans/chaos_burst.toml",
        include_str!("../plans/chaos_burst.toml"),
    ),
    (
        "plans/storm_crossing.toml",
        include_str!("../plans/storm_crossing.toml"),
    ),
    (
        "plans/blackout_long.toml",
        include_str!("../plans/blackout_long.toml"),
    ),
    (
        "plans/parked_control.toml",
        include_str!("../plans/parked_control.toml"),
    ),
    (
        "plans/node_crash.toml",
        include_str!("../plans/node_crash.toml"),
    ),
    (
        "plans/power_off.toml",
        include_str!("../plans/power_off.toml"),
    ),
    (
        "plans/scheme_ladder.toml",
        include_str!("../plans/scheme_ladder.toml"),
    ),
    (
        "plans/duplication.toml",
        include_str!("../plans/duplication.toml"),
    ),
    (
        "plans/softstate_pingpong.toml",
        include_str!("../plans/softstate_pingpong.toml"),
    ),
    (
        "plans/flashcrowd.toml",
        include_str!("../plans/flashcrowd.toml"),
    ),
    ("plans/metro.toml", include_str!("../plans/metro.toml")),
    (
        "plans/vertical.toml",
        include_str!("../plans/vertical.toml"),
    ),
];

/// Loads one plan from TOML, rebases it onto `seed`, runs it, and judges
/// its expectations.
///
/// # Errors
///
/// A parse failure or any expectation violation returns the message to
/// print on stderr (the structured failure report, for violations) —
/// callers exit nonzero on `Err`.
pub fn run_corpus_plan(
    toml: &str,
    file: &str,
    seed: u64,
    threads: usize,
) -> Result<String, String> {
    let plan = ScenarioPlan::from_toml(toml, file).map_err(|e| format!("{e}\n"))?;
    let outcome = run_plan(&plan.with_seed(seed), threads);
    if outcome.report.is_empty() {
        Ok(outcome.artifact)
    } else {
        Err(outcome.report.to_json())
    }
}

fn status_line(name: &str, outcome: &PlanOutcome) -> String {
    format!(
        "{name}: ok fnv1a={} ({} points, {} events)\n",
        fnv1a64_hex(outcome.artifact.as_bytes()),
        outcome.points.len(),
        outcome.events
    )
}

/// Runs the whole compiled-in corpus and renders one status line per
/// plan (name, artifact content hash, point and event counts). The
/// output is byte-identical at any thread count.
///
/// # Errors
///
/// Returns the accumulated status lines plus every failing plan's
/// structured report.
pub fn run_corpus(seed: u64, threads: usize) -> Result<String, String> {
    let mut out = String::new();
    let mut failures = String::new();
    for (file, toml) in CORPUS {
        let plan = match ScenarioPlan::from_toml(toml, file) {
            Ok(p) => p,
            Err(e) => {
                let _ = writeln!(out, "{file}: PARSE ERROR");
                let _ = writeln!(failures, "{e}");
                continue;
            }
        };
        let name = plan.name.clone();
        let outcome = run_plan(&plan.with_seed(seed), threads);
        if outcome.report.is_empty() {
            out.push_str(&status_line(&name, &outcome));
        } else {
            let _ = writeln!(
                out,
                "{name}: FAILED ({} violations)",
                outcome.report.entries.len()
            );
            failures.push_str(&outcome.report.to_json());
        }
    }
    if failures.is_empty() {
        let _ = writeln!(out, "corpus: {} plans ok (seed {seed})", CORPUS.len());
        Ok(out)
    } else {
        Err(format!("{out}{failures}"))
    }
}

/// Runs `count` fuzzed plans derived from `seed`, asserting the
/// universal battery on each **plus** artifact determinism: every plan
/// runs once sequentially and once on `max(threads, 2)` workers and the
/// two artifacts must match byte-for-byte. One status line per plan;
/// the output never mentions the thread count, so CI can `cmp` it
/// across `--threads` values.
///
/// # Errors
///
/// Returns the accumulated status lines plus every violation report.
pub fn run_fuzz(count: u64, seed: u64, threads: usize) -> Result<String, String> {
    let mut out = String::new();
    let mut failures = String::new();
    for index in 0..count {
        let plan = fuzz_plan(seed, index);
        let name = plan.name.clone();
        let sequential = run_plan(&plan, 1);
        let parallel = run_plan(&plan, threads.max(2));
        let mut bad = false;
        if !sequential.report.is_empty() {
            bad = true;
            failures.push_str(&sequential.report.to_json());
        }
        if sequential.artifact != parallel.artifact {
            bad = true;
            let _ = writeln!(
                failures,
                "{name}: artifact differs across thread counts ({} sequential vs {} parallel)",
                fnv1a64_hex(sequential.artifact.as_bytes()),
                fnv1a64_hex(parallel.artifact.as_bytes()),
            );
        }
        if bad {
            let _ = writeln!(out, "{name}: FAILED");
        } else {
            out.push_str(&status_line(&name, &sequential));
        }
    }
    if failures.is_empty() {
        let _ = writeln!(out, "fuzz: {count} plans ok (seed {seed})");
        Ok(out)
    } else {
        Err(format!("{out}{failures}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fh_scenarios::plan::{reference_chaos, reference_storm, reference_timeline};

    fn corpus_plan(file: &str) -> ScenarioPlan {
        let (_, toml) = CORPUS
            .iter()
            .find(|(f, _)| *f == file)
            .unwrap_or_else(|| panic!("{file} not in CORPUS"));
        ScenarioPlan::from_toml(toml, file).expect("corpus plan parses")
    }

    #[test]
    fn whole_corpus_parses() {
        for (file, toml) in CORPUS {
            let plan = ScenarioPlan::from_toml(toml, file)
                .unwrap_or_else(|e| panic!("{file} failed to parse: {e}"));
            assert!(!plan.name.is_empty(), "{file}");
        }
    }

    /// The three determinism bins are corpus plans now; each TOML must
    /// decode to exactly its reference constructor (modulo the artifact
    /// lock, which only the TOML carries) or the golden bytes drift.
    #[test]
    fn legacy_corpus_plans_match_their_reference_constructors() {
        for (file, reference) in [
            ("plans/chaos.toml", reference_chaos()),
            ("plans/storm.toml", reference_storm()),
            ("plans/timeline.toml", reference_timeline()),
        ] {
            let mut plan = corpus_plan(file);
            assert!(
                plan.expectations.artifact_fnv1a.is_some(),
                "{file} must lock its artifact bytes"
            );
            plan.expectations.artifact_fnv1a = None;
            assert_eq!(plan, reference, "{file} drifted from its reference");
        }
    }

    /// A violated bound yields the structured report (the driver's
    /// nonzero-exit path); the pristine plan passes.
    #[test]
    fn expectation_violation_reports_and_clean_plan_passes() {
        let (file, toml) = CORPUS
            .iter()
            .find(|(f, _)| *f == "plans/parked_control.toml")
            .expect("corpus");
        let ok = run_corpus_plan(toml, file, 2003, 2);
        assert!(ok.is_ok(), "{}", ok.unwrap_err());

        // Tampering with the locked artifact hash (flip the first digit)
        // must fail with a structured report naming the check.
        let broken = toml.replace("artifact_fnv1a = \"0x0", "artifact_fnv1a = \"0x1");
        assert_ne!(broken, *toml, "lock line not found to tamper with");
        let err = run_corpus_plan(&broken, file, 2003, 2).unwrap_err();
        assert!(err.contains("\"artifact_fnv1a\""), "{err}");
        assert!(err.contains("\"violations\": 1"), "{err}");
    }

    #[test]
    fn malformed_corpus_plan_is_a_pointed_parse_error() {
        let err = run_corpus_plan("[plan]\nseed = 1\n", "broken.toml", 2003, 1).unwrap_err();
        assert_eq!(err, "broken.toml: [plan].name: required key is missing\n");
    }

    #[test]
    fn fuzz_smoke_is_clean_and_thread_invariant() {
        let a = run_fuzz(3, 7, 2).expect("fuzz plans hold the universal battery");
        let b = run_fuzz(3, 7, 4).expect("fuzz plans hold the universal battery");
        assert_eq!(a, b, "fuzz output must not depend on the thread count");
        assert!(a.contains("fuzz-0000: ok"), "{a}");
        assert!(a.ends_with("fuzz: 3 plans ok (seed 7)\n"), "{a}");
    }
}
