//! # fh-bench — figure regeneration library
//!
//! Each `fig*` function runs the corresponding experiment from
//! [`fh_scenarios::experiments`] with the thesis' parameters and renders
//! the series as a plain-text table (the same rows the paper's figures
//! plot). The `repro` binary prints them; the Criterion benches in
//! `benches/` time them.
//!
//! Every figure function takes a thread count, forwarded to the
//! deterministic sweep engine ([`fh_scenarios::sweep`]): the rendered
//! table is bit-identical at any value. Single-run figures ignore it.
//! Alongside the text, a [`FigureRun`] reports how many simulator events
//! the figure processed, which the `repro` binary turns into the
//! events/second column of `BENCH_sweeps.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod csv;
pub mod planio;

use std::fmt::Write as _;

use fh_core::Scheme;
use fh_scenarios::experiments::{self, BufferUtilizationParams, FIG_4_6_RATES};
use fh_scenarios::sweep::parallel_map;
use fh_sim::SimDuration;

/// One regenerated figure: the rendered table plus run accounting.
#[derive(Debug, Clone)]
pub struct FigureRun {
    /// The plain-text table, exactly as `repro` prints it.
    pub text: String,
    /// Total simulator events processed while regenerating the figure.
    pub events: u64,
}

/// Parameters shared by the QoS / delay experiments (§4.2.2–4.2.3).
pub mod params {
    /// Buffer capacity per router for the proposed scheme (Figs 4.4/4.5).
    pub const PROPOSED_CAPACITY: usize = 20;
    /// Buffer capacity for the original fast handover (Figs 4.3/4.7):
    /// "double the size of our proposed method".
    pub const FH_CAPACITY: usize = 40;
    /// The per-handover buffer request used in those figures.
    pub const REQUEST: u32 = 40;
    /// Handoffs simulated in Figs 4.3–4.5.
    pub const HANDOFFS: u64 = 100;
    /// Seed used by the `repro` binary.
    pub const SEED: u64 = 2003;
}

/// Fig 4.2 — buffer utilization of different handoff mechanisms.
#[must_use]
pub fn fig4_2(threads: usize) -> FigureRun {
    let r = experiments::buffer_utilization(BufferUtilizationParams::default(), threads);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig 4.2 — packet drops vs simultaneous handoffs (64 kb/s per host)"
    );
    let _ = write!(out, "{:>5}", "MHs");
    for s in &r.series {
        let _ = write!(out, "{:>8}", s.label);
    }
    let _ = writeln!(out);
    let n_points = r.series[0].points.len();
    for i in 0..n_points {
        let _ = write!(out, "{:>5}", r.series[0].points[i].0);
        for s in &r.series {
            let _ = write!(out, "{:>8}", s.points[i].1);
        }
        let _ = writeln!(out);
    }
    FigureRun {
        text: out,
        events: r.events,
    }
}

fn render_qos(result: &experiments::QosDropsResult, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "{:>9}{:>10}{:>10}{:>10}",
        "handoffs", "F1(RT)", "F2(HP)", "F3(BE)"
    );
    let n = result.drops[0].len();
    let mut idx = 9; // print handoff 10, 20, …
    while idx < n {
        let _ = writeln!(
            out,
            "{:>9}{:>10}{:>10}{:>10}",
            idx + 1,
            result.drops[0][idx],
            result.drops[1][idx],
            result.drops[2][idx]
        );
        idx += 10;
    }
    out
}

/// Fig 4.3 — drops per flow, original fast handover, buffer = 40.
#[must_use]
pub fn fig4_3(_threads: usize) -> FigureRun {
    let r = experiments::qos_drops(
        Scheme::NarOnly,
        params::FH_CAPACITY,
        params::REQUEST,
        params::HANDOFFS,
        params::SEED,
    );
    FigureRun {
        text: render_qos(
            &r,
            "Fig 4.3 — cumulative drops, original fast handover (buffer 40)",
        ),
        events: r.events,
    }
}

/// Fig 4.4 — drops per flow, proposed method, classification disabled.
#[must_use]
pub fn fig4_4(_threads: usize) -> FigureRun {
    let r = experiments::qos_drops(
        Scheme::Dual { classify: false },
        params::PROPOSED_CAPACITY,
        params::REQUEST,
        params::HANDOFFS,
        params::SEED,
    );
    FigureRun {
        text: render_qos(
            &r,
            "Fig 4.4 — cumulative drops, proposed method (buffer 20, class disabled)",
        ),
        events: r.events,
    }
}

/// Fig 4.5 — drops per flow, proposed method, classification enabled.
#[must_use]
pub fn fig4_5(_threads: usize) -> FigureRun {
    let r = experiments::qos_drops(
        Scheme::Dual { classify: true },
        params::PROPOSED_CAPACITY,
        params::REQUEST,
        params::HANDOFFS,
        params::SEED,
    );
    FigureRun {
        text: render_qos(
            &r,
            "Fig 4.5 — cumulative drops, proposed method (buffer 20, class enabled)",
        ),
        events: r.events,
    }
}

/// Fig 4.6 — drops vs per-flow data rate, one handoff, proposed method.
#[must_use]
pub fn fig4_6(threads: usize) -> FigureRun {
    let r = experiments::rate_sweep(
        &FIG_4_6_RATES,
        params::PROPOSED_CAPACITY,
        params::REQUEST,
        params::SEED,
        threads,
    );
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig 4.6 — drops vs data rate (one handoff, class enabled)"
    );
    let _ = writeln!(
        out,
        "{:>10}{:>10}{:>10}{:>10}",
        "kb/s", "F1(RT)", "F2(HP)", "F3(BE)"
    );
    for (i, &rate) in r.rates_kbps.iter().enumerate() {
        let _ = writeln!(
            out,
            "{:>10.1}{:>10}{:>10}{:>10}",
            rate, r.drops[0][i], r.drops[1][i], r.drops[2][i]
        );
    }
    FigureRun {
        text: out,
        events: r.events,
    }
}

fn render_delay(r: &experiments::DelayTraceResult, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let Some(spike) = r.spike_start else {
        let _ = writeln!(out, "  (no delay spike found)");
        return out;
    };
    let from = spike.saturating_sub(3);
    let to = spike + 27;
    let _ = writeln!(
        out,
        "{:>6}{:>12}{:>12}{:>12}   (delays in ms; '-' = lost)",
        "seq", "F1(RT)", "F2(HP)", "F3(BE)"
    );
    for seq in from..to {
        let _ = write!(out, "{seq:>6}");
        for k in 0..3 {
            match r.series[k].iter().find(|&&(s, _)| s == seq) {
                Some(&(_, d)) => {
                    let _ = write!(out, "{:>12.1}", d * 1e3);
                }
                None => {
                    let _ = write!(out, "{:>12}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Fig 4.7 — end-to-end delay, original fast handover (buffer 40).
#[must_use]
pub fn fig4_7(_threads: usize) -> FigureRun {
    let r = experiments::delay_trace(
        Scheme::NarOnly,
        params::FH_CAPACITY,
        params::REQUEST,
        SimDuration::from_millis(2),
        params::SEED,
    );
    FigureRun {
        text: render_delay(&r, "Fig 4.7 — e2e delay, fast handover (buffer 40)"),
        events: r.events,
    }
}

/// Fig 4.8 — end-to-end delay, proposed (buffer 20, class disabled).
#[must_use]
pub fn fig4_8(_threads: usize) -> FigureRun {
    let r = experiments::delay_trace(
        Scheme::Dual { classify: false },
        params::PROPOSED_CAPACITY,
        params::REQUEST,
        SimDuration::from_millis(2),
        params::SEED,
    );
    FigureRun {
        text: render_delay(
            &r,
            "Fig 4.8 — e2e delay, proposed (buffer 20, class disabled)",
        ),
        events: r.events,
    }
}

/// Fig 4.9 — delay with classification, PAR↔NAR link delay 2 ms.
#[must_use]
pub fn fig4_9(_threads: usize) -> FigureRun {
    let r = experiments::delay_trace(
        Scheme::Dual { classify: true },
        params::PROPOSED_CAPACITY,
        params::REQUEST,
        SimDuration::from_millis(2),
        params::SEED,
    );
    FigureRun {
        text: render_delay(&r, "Fig 4.9 — e2e delay, proposed + class (AR link 2 ms)"),
        events: r.events,
    }
}

/// Fig 4.10 — delay with classification, PAR↔NAR link delay 50 ms.
#[must_use]
pub fn fig4_10(_threads: usize) -> FigureRun {
    let r = experiments::delay_trace(
        Scheme::Dual { classify: true },
        params::PROPOSED_CAPACITY,
        params::REQUEST,
        SimDuration::from_millis(50),
        params::SEED,
    );
    FigureRun {
        text: render_delay(&r, "Fig 4.10 — e2e delay, proposed + class (AR link 50 ms)"),
        events: r.events,
    }
}

fn render_tcp(r: &experiments::TcpHandoffResult, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    if let Some((down, up)) = r.blackout {
        let _ = writeln!(out, "  black-out: {down:.3} s → {up:.3} s");
    }
    let _ = writeln!(out, "  timeouts: {:?}", r.timeouts);
    let _ = writeln!(out, "  bytes delivered in order: {}", r.bytes_delivered);
    // Sequence trace around the black-out.
    if let Some((down, up)) = r.blackout {
        let lo = down - 0.3;
        let hi = up + 2.0;
        let _ = writeln!(out, "  sender transmissions (t, seg) in window:");
        let picks: Vec<_> = r
            .sent
            .iter()
            .filter(|&&(t, _)| t >= lo && t <= hi)
            .collect();
        for chunk in picks.chunks(6) {
            let _ = write!(out, "   ");
            for &&(t, s) in chunk {
                let _ = write!(out, " ({t:.3},{s})");
            }
            let _ = writeln!(out);
        }
        let _ = writeln!(out, "  receiver arrivals (t, seg) in window:");
        let picks: Vec<_> = r
            .received
            .iter()
            .filter(|&&(t, _)| t >= lo && t <= hi)
            .collect();
        for chunk in picks.chunks(6) {
            let _ = write!(out, "   ");
            for &&(t, s) in chunk {
                let _ = write!(out, " ({t:.3},{s})");
            }
            let _ = writeln!(out);
        }
    }
    out
}

/// Fig 4.12 — TCP sequence trace through an L2 handoff, no buffering.
#[must_use]
pub fn fig4_12(_threads: usize) -> FigureRun {
    let r = experiments::tcp_l2_handoff(false, params::SEED);
    FigureRun {
        text: render_tcp(&r, "Fig 4.12 — TCP through L2 handoff (no buffering)"),
        events: r.events,
    }
}

/// Fig 4.13 — TCP sequence trace through an L2 handoff, proposed method.
#[must_use]
pub fn fig4_13(_threads: usize) -> FigureRun {
    let r = experiments::tcp_l2_handoff(true, params::SEED);
    FigureRun {
        text: render_tcp(&r, "Fig 4.13 — TCP through L2 handoff (proposed method)"),
        events: r.events,
    }
}

/// Fig 4.14 — TCP throughput during the L2 handoff, both runs (fanned
/// across the worker pool — they are independent simulations).
#[must_use]
pub fn fig4_14(threads: usize) -> FigureRun {
    let mut runs = parallel_map(threads, &[true, false], |_, &buffering| {
        experiments::tcp_l2_handoff(buffering, params::SEED)
    });
    let without = runs.pop().expect("two runs");
    let with = runs.pop().expect("two runs");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig 4.14 — TCP throughput during L2 handoff (Mbit/s per 100 ms)"
    );
    let _ = writeln!(out, "{:>8}{:>10}{:>10}", "t (s)", "buffer", "none");
    let lo = with.blackout.map_or(2.0, |(d, _)| d - 0.5);
    for (i, &(t, mbps)) in with.throughput.iter().enumerate() {
        if t < lo || t > lo + 3.5 {
            continue;
        }
        let none = without.throughput.get(i).map_or(0.0, |&(_, m)| m);
        let _ = writeln!(out, "{t:>8.1}{mbps:>10.2}{none:>10.2}");
    }
    let _ = writeln!(
        out,
        "totals: {} bytes (buffer) vs {} bytes (none)",
        with.bytes_delivered, without.bytes_delivered
    );
    FigureRun {
        text: out,
        events: with.events + without.events,
    }
}

/// Ablation — best-effort admission threshold `a`.
#[must_use]
pub fn ablation_threshold(threads: usize) -> FigureRun {
    let r = experiments::threshold_sweep(&[0, 1, 2, 4, 8, 12, 16, 19], params::SEED, threads);
    let mut out = String::new();
    let _ = writeln!(out, "Ablation — threshold a (case 1c/3c admission)");
    let _ = writeln!(out, "{:>5}{:>10}{:>10}", "a", "BE drops", "HP drops");
    for (i, &a) in r.thresholds.iter().enumerate() {
        let _ = writeln!(
            out,
            "{:>5}{:>10}{:>10}",
            a, r.best_effort_drops[i], r.high_priority_drops[i]
        );
    }
    FigureRun {
        text: out,
        events: r.events,
    }
}

/// Ablation — black-out duration (60–400 ms measured 802.11 range).
#[must_use]
pub fn ablation_blackout(threads: usize) -> FigureRun {
    let r = experiments::blackout_sweep(&[60, 100, 200, 300, 400], params::SEED, threads);
    let mut out = String::new();
    let _ = writeln!(out, "Ablation — L2 black-out duration vs total drops");
    let _ = writeln!(out, "{:>8}{:>12}{:>12}", "ms", "proposed", "no buffer");
    for (i, &ms) in r.blackout_ms.iter().enumerate() {
        let _ = writeln!(
            out,
            "{:>8}{:>12}{:>12}",
            ms, r.with_buffering[i], r.without_buffering[i]
        );
    }
    FigureRun {
        text: out,
        events: r.events,
    }
}

/// Ablation — per-packet flush processing cost (§4.2.3 observation).
#[must_use]
pub fn ablation_pacing(threads: usize) -> FigureRun {
    let r = experiments::flush_pacing_sweep(&[0, 500, 1_000, 2_000, 5_000], params::SEED, threads);
    let mut out = String::new();
    let _ = writeln!(out, "Ablation — flush pacing vs worst-case delay (HP flow)");
    let _ = writeln!(
        out,
        "{:>12}{:>14}{:>10}",
        "spacing (us)", "p99 delay ms", "losses"
    );
    for (i, &us) in r.spacing_us.iter().enumerate() {
        let _ = writeln!(
            out,
            "{:>12}{:>14.1}{:>10}",
            us, r.p99_delay_ms[i], r.hp_losses[i]
        );
    }
    FigureRun {
        text: out,
        events: r.events,
    }
}

/// Ablation — handover quality while a neighbor saturates the cell.
#[must_use]
pub fn ablation_background(threads: usize) -> FigureRun {
    let r = experiments::background_load(&[64.0, 256.0, 512.0, 1024.0], params::SEED, threads);
    let mut out = String::new();
    let _ = writeln!(out, "Ablation — background cell load vs handover quality");
    let _ = writeln!(
        out,
        "{:>10}{:>10}{:>12}{:>10}",
        "bg kb/s", "HP lost", "HP p99 ms", "BG lost"
    );
    for (i, &k) in r.bg_kbps.iter().enumerate() {
        let _ = writeln!(
            out,
            "{:>10.0}{:>10}{:>12.1}{:>10}",
            k, r.hp_losses[i], r.hp_p99_ms[i], r.bg_losses[i]
        );
    }
    FigureRun {
        text: out,
        events: r.events,
    }
}

/// Chaos sweep — handover robustness under seeded control-plane loss.
#[must_use]
pub fn chaos(threads: usize) -> FigureRun {
    let r = experiments::chaos_sweep(&experiments::CHAOS_LOSS_PROBS, params::SEED, threads);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Chaos — handover robustness vs injected loss (hardened rtx, ping-pong)"
    );
    let _ = writeln!(
        out,
        "{:>7}{:>6}{:>6}{:>6}{:>10}{:>7}{:>7}{:>7}{:>8}{:>7}{:>7}",
        "loss%", "pred", "react", "fail", "recov ms", "F1", "F2", "F3", "faults", "rtx", "degr"
    );
    for p in &r.points {
        let _ = writeln!(
            out,
            "{:>7.1}{:>6}{:>6}{:>6}{:>10.1}{:>7}{:>7}{:>7}{:>8}{:>7}{:>7}",
            p.loss * 100.0,
            p.predictive,
            p.reactive,
            p.failed,
            p.recovery_ms,
            p.class_drops[0],
            p.class_drops[1],
            p.class_drops[2],
            p.fault_drops,
            p.retransmissions,
            p.degradations
        );
    }
    FigureRun {
        text: out,
        events: r.events,
    }
}

/// Ablation — signaling accounting for one proposed-scheme handover.
#[must_use]
pub fn ablation_signaling(_threads: usize) -> FigureRun {
    let r = experiments::signaling_overhead(params::SEED);
    let mut out = String::new();
    let _ = writeln!(out, "Signaling — control messages for one handover (§3.3)");
    for (kind, count) in &r.by_kind {
        if *count > 0 {
            let _ = writeln!(out, "{kind:>12}: {count}");
        }
    }
    let _ = writeln!(
        out,
        "total={} piggybacked={} control_bytes={}",
        r.total, r.piggybacked, r.control_bytes
    );
    FigureRun {
        text: out,
        events: r.events,
    }
}
