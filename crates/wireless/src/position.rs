//! Geometry and mobility models.
//!
//! The thesis' simulations (§4.1) place two access routers 212 m apart with
//! 112 m coverage radii (a 12 m overlap) and move mobile hosts linearly at
//! 10 m/s, or back and forth for the repeated-handoff experiments. This
//! module provides exactly those models: a 2-D [`Position`] and a
//! [`Mobility`] description evaluated as a pure function of time, so every
//! component observes identical positions without integration error.
//!
//! # Examples
//!
//! ```
//! use fh_wireless::{Mobility, Position};
//! use fh_sim::SimTime;
//!
//! let m = Mobility::linear(Position::new(0.0, 0.0), Position::new(212.0, 0.0), 10.0);
//! assert_eq!(m.position_at(SimTime::ZERO), Position::new(0.0, 0.0));
//! let mid = m.position_at(SimTime::from_secs(10));
//! assert!((mid.x - 100.0).abs() < 1e-9);
//! ```

use serde::{Deserialize, Serialize};

use fh_sim::SimTime;

/// A point in the 2-D simulation plane, in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Position {
    /// East-west coordinate in meters.
    pub x: f64,
    /// North-south coordinate in meters.
    pub y: f64,
}

impl Position {
    /// Creates a position.
    #[must_use]
    pub fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    /// Euclidean distance to `other` in meters.
    #[must_use]
    pub fn distance(self, other: Position) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    fn lerp(self, other: Position, f: f64) -> Position {
        Position {
            x: self.x + (other.x - self.x) * f,
            y: self.y + (other.y - self.y) * f,
        }
    }
}

impl std::fmt::Display for Position {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({:.1}m, {:.1}m)", self.x, self.y)
    }
}

/// A mobility model: position as a pure function of simulation time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Mobility {
    /// Never moves.
    Stationary(Position),
    /// Moves from `from` toward `to` at `speed` m/s, then stops at `to`.
    Linear {
        /// Starting point.
        from: Position,
        /// End point (the host parks here).
        to: Position,
        /// Speed in meters per second.
        speed: f64,
        /// When movement begins; the host waits at `from` before this.
        depart: SimTime,
    },
    /// Shuttles between `a` and `b` at `speed` m/s forever (the
    /// 100-handoff experiments of Figs 4.3–4.5).
    PingPong {
        /// One turnaround point.
        a: Position,
        /// The other turnaround point.
        b: Position,
        /// Speed in meters per second.
        speed: f64,
        /// When movement begins (at `a`).
        depart: SimTime,
    },
}

impl Mobility {
    /// Convenience constructor for a [`Mobility::Linear`] departing at t=0.
    ///
    /// # Panics
    ///
    /// Panics if `speed` is not finite and positive.
    #[must_use]
    pub fn linear(from: Position, to: Position, speed: f64) -> Self {
        assert!(speed.is_finite() && speed > 0.0, "speed must be positive");
        Mobility::Linear {
            from,
            to,
            speed,
            depart: SimTime::ZERO,
        }
    }

    /// Convenience constructor for a [`Mobility::PingPong`] departing at t=0.
    ///
    /// # Panics
    ///
    /// Panics if `speed` is not finite and positive, or `a == b`.
    #[must_use]
    pub fn ping_pong(a: Position, b: Position, speed: f64) -> Self {
        assert!(speed.is_finite() && speed > 0.0, "speed must be positive");
        assert!(a.distance(b) > 0.0, "ping-pong endpoints must differ");
        Mobility::PingPong {
            a,
            b,
            speed,
            depart: SimTime::ZERO,
        }
    }

    /// The position at simulated time `t`.
    #[must_use]
    pub fn position_at(&self, t: SimTime) -> Position {
        match *self {
            Mobility::Stationary(p) => p,
            Mobility::Linear {
                from,
                to,
                speed,
                depart,
            } => {
                let elapsed = t.saturating_since(depart).as_secs_f64();
                let total = from.distance(to);
                if total == 0.0 {
                    return to;
                }
                let f = (elapsed * speed / total).min(1.0);
                from.lerp(to, f)
            }
            Mobility::PingPong {
                a,
                b,
                speed,
                depart,
            } => {
                let elapsed = t.saturating_since(depart).as_secs_f64();
                let leg = a.distance(b) / speed; // seconds per one-way trip
                let phase = elapsed % (2.0 * leg);
                if phase <= leg {
                    a.lerp(b, phase / leg)
                } else {
                    b.lerp(a, (phase - leg) / leg)
                }
            }
        }
    }

    /// `true` once the model will never move again after `t`.
    #[must_use]
    pub fn is_settled_at(&self, t: SimTime) -> bool {
        match *self {
            Mobility::Stationary(_) => true,
            Mobility::Linear {
                from,
                to,
                speed,
                depart,
            } => {
                let elapsed = t.saturating_since(depart).as_secs_f64();
                elapsed * speed >= from.distance(to)
            }
            Mobility::PingPong { .. } => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(3.0, 4.0);
        assert!((a.distance(b) - 5.0).abs() < 1e-12);
        assert_eq!(a.distance(a), 0.0);
    }

    #[test]
    fn stationary_never_moves() {
        let p = Position::new(7.0, 9.0);
        let m = Mobility::Stationary(p);
        assert_eq!(m.position_at(SimTime::ZERO), p);
        assert_eq!(m.position_at(SimTime::from_secs(1000)), p);
        assert!(m.is_settled_at(SimTime::ZERO));
    }

    #[test]
    fn linear_reaches_and_parks() {
        // The paper's walk: 212 m at 10 m/s.
        let m = Mobility::linear(Position::new(0.0, 0.0), Position::new(212.0, 0.0), 10.0);
        assert!((m.position_at(SimTime::from_secs(5)).x - 50.0).abs() < 1e-9);
        let done = m.position_at(SimTime::from_secs(22));
        assert!((done.x - 212.0).abs() < 1e-9);
        assert!(!m.is_settled_at(SimTime::from_secs(21)));
        assert!(m.is_settled_at(SimTime::from_millis(21_200)));
    }

    #[test]
    fn linear_waits_for_departure() {
        let m = Mobility::Linear {
            from: Position::new(0.0, 0.0),
            to: Position::new(100.0, 0.0),
            speed: 10.0,
            depart: SimTime::from_secs(5),
        };
        assert_eq!(m.position_at(SimTime::from_secs(4)).x, 0.0);
        assert!((m.position_at(SimTime::from_secs(6)).x - 10.0).abs() < 1e-9);
    }

    #[test]
    fn ping_pong_oscillates() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(100.0, 0.0);
        let m = Mobility::ping_pong(a, b, 10.0); // 10 s per leg
        assert!((m.position_at(SimTime::from_secs(5)).x - 50.0).abs() < 1e-9);
        assert!((m.position_at(SimTime::from_secs(10)).x - 100.0).abs() < 1e-9);
        assert!((m.position_at(SimTime::from_secs(15)).x - 50.0).abs() < 1e-9);
        assert!((m.position_at(SimTime::from_secs(20)).x - 0.0).abs() < 1e-9);
        // Periodicity.
        assert!(
            (m.position_at(SimTime::from_secs(3)).x - m.position_at(SimTime::from_secs(23)).x)
                .abs()
                < 1e-9
        );
        assert!(!m.is_settled_at(SimTime::from_secs(1_000_000)));
    }

    #[test]
    fn degenerate_linear_is_parked() {
        let p = Position::new(1.0, 1.0);
        let m = Mobility::Linear {
            from: p,
            to: p,
            speed: 1.0,
            depart: SimTime::ZERO,
        };
        assert_eq!(m.position_at(SimTime::from_secs(1)), p);
    }

    #[test]
    #[should_panic(expected = "speed")]
    fn zero_speed_panics() {
        let _ = Mobility::linear(Position::default(), Position::new(1.0, 0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "differ")]
    fn ping_pong_same_endpoints_panics() {
        let _ = Mobility::ping_pong(Position::default(), Position::default(), 1.0);
    }
}
