//! The radio environment: access points, attachments and the shared
//! wireless channel.
//!
//! Each access point (AP) sits on an access router's node and covers a disc
//! of configurable radius. A mobile host is attached to at most one AP at a
//! time — the thesis' key constraint ("currently available IEEE 802.11
//! wireless LAN cards can only access one access point at a time", §2.4) —
//! and all frames through one AP share a single half-duplex channel, so
//! buffer flushes serialize naturally instead of arriving as an impossible
//! burst.
//!
//! Frames sent to a detached host are lost and recorded under
//! [`DropReason::RadioDetached`]: this is exactly the loss the buffer
//! management scheme exists to prevent.

use std::collections::HashMap;

use fh_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use fh_net::{
    ApId, DropReason, FaultSpec, FaultState, FaultVerdict, NetCtx, NetMsg, NetWorld, NodeId, Packet,
};

use crate::position::Position;
use crate::tech::RadioTechnology;

/// Static parameters of the shared wireless channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WirelessSpec {
    /// Channel capacity in bits per second (11 Mb/s by default, as 802.11b).
    pub bandwidth_bps: u64,
    /// Over-the-air propagation plus MAC access delay.
    pub delay: SimDuration,
}

impl WirelessSpec {
    /// 802.11b-flavoured defaults: 11 Mb/s, 1 ms access+propagation delay.
    #[must_use]
    pub fn default_80211b() -> Self {
        WirelessSpec {
            bandwidth_bps: 11_000_000,
            delay: SimDuration::from_millis(1),
        }
    }

    /// Serialization time of `bytes` on the channel (never zero).
    #[must_use]
    pub fn tx_time(&self, bytes: u32) -> SimDuration {
        // Widen to u128: bits * 1e9 overflows u64 for jumbo frame sizes on
        // slow channels (same boundary as `LinkSpec::tx_time`).
        let bits = u128::from(bytes) * 8;
        let ns = (bits * 1_000_000_000).div_ceil(u128::from(self.bandwidth_bps));
        SimDuration::from_nanos(u64::try_from(ns).unwrap_or(u64::MAX).max(1))
    }
}

impl Default for WirelessSpec {
    fn default() -> Self {
        WirelessSpec::default_80211b()
    }
}

/// One access point (WLAN cell or cellular sector), co-located with an
/// access router node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccessPoint {
    /// Link-layer identifier.
    pub id: ApId,
    /// The access-router actor this AP hangs off.
    pub router: NodeId,
    /// Centre of the coverage disc.
    pub pos: Position,
    /// Coverage radius in meters (112 m in the thesis topology).
    pub radius: f64,
    /// The link-layer technology behind this AP (WLAN by default).
    pub tech: RadioTechnology,
}

impl AccessPoint {
    /// `true` if `p` lies inside this AP's coverage disc.
    #[must_use]
    pub fn covers(&self, p: Position) -> bool {
        self.pos.distance(p) <= self.radius
    }
}

/// The shared radio world: APs, attachments and per-AP channel state.
#[derive(Debug)]
pub struct RadioEnv {
    aps: Vec<AccessPoint>,
    spec: WirelessSpec,
    /// Channel parameters of every [`RadioTechnology::Cellular`] AP (the
    /// WLAN spec stays per-environment in `spec`, preserving every legacy
    /// custom-bandwidth scenario byte-for-byte).
    cellular_spec: WirelessSpec,
    attachments: HashMap<NodeId, ApId>,
    /// Secondary-interface attachments of multi-homed hosts (the wide-area
    /// radio during make-before-break). Legacy single-interface hosts
    /// never appear here.
    aux: HashMap<NodeId, ApId>,
    busy_until: Vec<SimTime>,
    faults: Vec<Option<Box<FaultState>>>,
    /// Frames lost to detached receivers, per mobile host.
    pub airtime_frames: u64,
}

impl Default for RadioEnv {
    fn default() -> Self {
        RadioEnv {
            aps: Vec::new(),
            spec: WirelessSpec::default(),
            cellular_spec: RadioTechnology::Cellular.default_spec(),
            attachments: HashMap::new(),
            aux: HashMap::new(),
            busy_until: Vec::new(),
            faults: Vec::new(),
            airtime_frames: 0,
        }
    }
}

impl RadioEnv {
    /// Creates an empty environment with the given channel parameters.
    #[must_use]
    pub fn new(spec: WirelessSpec) -> Self {
        RadioEnv {
            spec,
            ..RadioEnv::default()
        }
    }

    /// The WLAN channel parameters.
    #[must_use]
    pub fn spec(&self) -> WirelessSpec {
        self.spec
    }

    /// The cellular channel parameters.
    #[must_use]
    pub fn cellular_spec(&self) -> WirelessSpec {
        self.cellular_spec
    }

    /// Overrides the channel parameters shared by all cellular APs.
    pub fn set_cellular_spec(&mut self, spec: WirelessSpec) {
        self.cellular_spec = spec;
    }

    /// The channel parameters governing `ap`'s air interface.
    #[must_use]
    pub fn spec_of(&self, ap: ApId) -> WirelessSpec {
        match self.aps[ap.0 as usize].tech {
            RadioTechnology::Wlan => self.spec,
            RadioTechnology::Cellular => self.cellular_spec,
        }
    }

    /// Registers a WLAN access point and returns its id.
    pub fn add_ap(&mut self, router: NodeId, pos: Position, radius: f64) -> ApId {
        self.add_ap_tech(router, pos, radius, RadioTechnology::Wlan)
    }

    /// Registers an access point of an explicit technology.
    pub fn add_ap_tech(
        &mut self,
        router: NodeId,
        pos: Position,
        radius: f64,
        tech: RadioTechnology,
    ) -> ApId {
        assert!(radius > 0.0, "coverage radius must be positive");
        let id = ApId(self.aps.len() as u32);
        self.aps.push(AccessPoint {
            id,
            router,
            pos,
            radius,
            tech,
        });
        self.busy_until.push(SimTime::ZERO);
        self.faults.push(None);
        id
    }

    /// Installs a seeded fault model on `ap`'s air interface.
    ///
    /// Every frame through the AP — uplink and downlink, control and data —
    /// passes the fault layer. Seed per AP via [`fh_sim::derive_seed`] so
    /// fault decisions stay independent of other channels.
    ///
    /// # Panics
    ///
    /// Panics on an unknown AP id.
    pub fn set_fault(&mut self, ap: ApId, spec: FaultSpec, seed: u64) {
        let idx = ap.0 as usize;
        assert!(idx < self.aps.len(), "unknown AP");
        self.faults[idx] = if spec.is_noop() {
            None
        } else {
            Some(Box::new(FaultState::new(spec, seed)))
        };
    }

    /// The fault spec active on `ap`'s air interface, if any.
    #[must_use]
    pub fn fault_spec(&self, ap: ApId) -> Option<&FaultSpec> {
        self.faults
            .get(ap.0 as usize)?
            .as_deref()
            .map(FaultState::spec)
    }

    /// Runs the fault layer for one frame entering `ap`'s channel.
    fn fault_decision(&mut self, now: SimTime, ap: ApId) -> FaultVerdict {
        match self.faults[ap.0 as usize].as_mut() {
            Some(state) => state.decide(now),
            None => FaultVerdict::Pass {
                extra_delay: SimDuration::ZERO,
                duplicate: false,
            },
        }
    }

    /// Access-point lookup.
    ///
    /// # Panics
    ///
    /// Panics on an unknown id.
    #[must_use]
    pub fn ap(&self, id: ApId) -> &AccessPoint {
        &self.aps[id.0 as usize]
    }

    /// All registered APs.
    #[must_use]
    pub fn aps(&self) -> &[AccessPoint] {
        &self.aps
    }

    /// The AP co-located with `router`, if any.
    #[must_use]
    pub fn ap_of_router(&self, router: NodeId) -> Option<ApId> {
        self.aps
            .iter()
            .find(|ap| ap.router == router)
            .map(|ap| ap.id)
    }

    /// APs whose coverage disc contains `p`, nearest first.
    #[must_use]
    pub fn aps_covering(&self, p: Position) -> Vec<ApId> {
        let mut v: Vec<&AccessPoint> = self.aps.iter().filter(|ap| ap.covers(p)).collect();
        v.sort_by(|a, b| {
            a.pos
                .distance(p)
                .partial_cmp(&b.pos.distance(p))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        v.into_iter().map(|ap| ap.id).collect()
    }

    /// Associates `mh`'s serving interface with `ap`, replacing any
    /// previous serving association (one card talks to one AP at a time).
    pub fn attach(&mut self, mh: NodeId, ap: ApId) {
        assert!((ap.0 as usize) < self.aps.len(), "unknown AP");
        self.attachments.insert(mh, ap);
    }

    /// Drops `mh`'s serving association. Returns the AP it was attached to.
    pub fn detach(&mut self, mh: NodeId) -> Option<ApId> {
        self.attachments.remove(&mh)
    }

    /// The AP `mh`'s serving interface is currently associated with.
    #[must_use]
    pub fn attachment(&self, mh: NodeId) -> Option<ApId> {
        self.attachments.get(&mh).copied()
    }

    /// Associates `mh`'s secondary (wide-area) interface with `ap` — the
    /// make-before-break step of a multi-homed host: the new radio comes
    /// up while the serving one keeps receiving.
    pub fn attach_aux(&mut self, mh: NodeId, ap: ApId) {
        assert!((ap.0 as usize) < self.aps.len(), "unknown AP");
        self.aux.insert(mh, ap);
    }

    /// Drops `mh`'s secondary association. Returns the AP it was on.
    pub fn detach_aux(&mut self, mh: NodeId) -> Option<ApId> {
        self.aux.remove(&mh)
    }

    /// Drops every association of `mh` at once (power-off / crash).
    pub fn detach_all(&mut self, mh: NodeId) {
        self.attachments.remove(&mh);
        self.aux.remove(&mh);
    }

    /// The AP `mh`'s secondary interface is associated with, if any.
    #[must_use]
    pub fn aux_attachment(&self, mh: NodeId) -> Option<ApId> {
        self.aux.get(&mh).copied()
    }

    /// Completes make-before-break: the secondary interface becomes the
    /// serving one, and the old serving attachment (if any) moves to the
    /// secondary slot so in-flight frames on the old link still arrive.
    /// Returns the new serving AP. No-op without a secondary association.
    pub fn promote_aux(&mut self, mh: NodeId) -> Option<ApId> {
        let new_serving = self.aux.remove(&mh)?;
        if let Some(old) = self.attachments.insert(mh, new_serving) {
            self.aux.insert(mh, old);
        }
        Some(new_serving)
    }

    /// `true` if any of `mh`'s interfaces is associated with `ap` — the
    /// downlink gate. For single-interface hosts this is exactly
    /// `attachment(mh) == Some(ap)`.
    #[must_use]
    pub fn is_attached(&self, mh: NodeId, ap: ApId) -> bool {
        self.attachments.get(&mh) == Some(&ap) || self.aux.get(&mh) == Some(&ap)
    }

    /// Mobile hosts with any interface associated with `ap`, sorted.
    #[must_use]
    pub fn attached_mhs(&self, ap: ApId) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self
            .attachments
            .iter()
            .filter(|&(_, &a)| a == ap)
            .map(|(&mh, _)| mh)
            .collect();
        v.extend(
            self.aux
                .iter()
                .filter(|&(_, &a)| a == ap)
                .map(|(&mh, _)| mh),
        );
        v.sort(); // deterministic order
        v.dedup();
        v
    }

    /// Reserves airtime for one frame of `bytes` on `ap`'s channel and
    /// returns the arrival instant at the receiver.
    fn reserve_airtime(&mut self, now: SimTime, ap: ApId, bytes: u32) -> SimTime {
        let spec = self.spec_of(ap);
        let tx = spec.tx_time(bytes);
        let idx = ap.0 as usize;
        let start = self.busy_until[idx].max(now);
        self.busy_until[idx] = start + tx;
        self.airtime_frames += 1;
        self.busy_until[idx] + spec.delay
    }

    /// When `ap`'s channel next becomes idle.
    #[must_use]
    pub fn channel_idle_at(&self, ap: ApId) -> SimTime {
        self.busy_until[ap.0 as usize]
    }
}

/// Shared-state contract for worlds with a radio environment.
pub trait RadioWorld: NetWorld {
    /// The radio environment.
    fn radio(&self) -> &RadioEnv;
    /// Mutable radio environment.
    fn radio_mut(&mut self) -> &mut RadioEnv;
}

/// Sends `pkt` from `ap` down to mobile host `mh`.
///
/// The frame is lost (and recorded as [`DropReason::RadioDetached`]) unless
/// `mh` is currently attached to `ap` — this is the black-out loss the
/// buffering scheme protects against.
pub fn send_downlink<S: RadioWorld>(
    ctx: &mut NetCtx<'_, S>,
    ap: ApId,
    mh: NodeId,
    pkt: Packet,
) -> bool {
    if !ctx.shared.radio().is_attached(mh, ap) {
        fh_net::record_drop(ctx, pkt.flow, DropReason::RadioDetached);
        return false;
    }
    let now = ctx.now();
    let (extra_delay, duplicate) = match ctx.shared.radio_mut().fault_decision(now, ap) {
        FaultVerdict::Drop => {
            fh_net::record_drop(ctx, pkt.flow, DropReason::FaultInjected);
            return false;
        }
        FaultVerdict::Pass {
            extra_delay,
            duplicate,
        } => (extra_delay, duplicate),
    };
    let router = ctx.shared.radio().ap(ap).router;
    let arrival = ctx.shared.radio_mut().reserve_airtime(now, ap, pkt.size) + extra_delay;
    if duplicate {
        let dup_arrival = ctx.shared.radio_mut().reserve_airtime(now, ap, pkt.size) + extra_delay;
        ctx.shared.stats_mut().record_duplicate(pkt.flow);
        ctx.send_at(
            mh,
            dup_arrival,
            NetMsg::RadioPacket {
                ap,
                from: router,
                pkt: pkt.clone(),
            },
        );
    }
    ctx.send_at(
        mh,
        arrival,
        NetMsg::RadioPacket {
            ap,
            from: router,
            pkt,
        },
    );
    true
}

/// Sends a whole batch of frames from `ap` down to `mh` — the buffer-flush
/// drain path. Returns the number of frames that made it onto the channel.
///
/// Behaviorally identical to calling [`send_downlink`] once per packet, in
/// order: every frame still gets its own fault decision, airtime
/// reservation and arrival event (a flush must serialize on the channel,
/// not arrive as an impossible burst), and a detached host still loses
/// every frame individually. Only the attachment check and the AP→router
/// lookup are amortized across the batch — nothing between two frames of
/// one batch can change them, since no other actor runs in between.
pub fn send_downlink_batch<S: RadioWorld>(
    ctx: &mut NetCtx<'_, S>,
    ap: ApId,
    mh: NodeId,
    pkts: Vec<Packet>,
) -> usize {
    if pkts.is_empty() {
        return 0;
    }
    if !ctx.shared.radio().is_attached(mh, ap) {
        for pkt in &pkts {
            fh_net::record_drop(ctx, pkt.flow, DropReason::RadioDetached);
        }
        return 0;
    }
    let router = ctx.shared.radio().ap(ap).router;
    let now = ctx.now();
    let mut sent = 0;
    for pkt in pkts {
        let (extra_delay, duplicate) = match ctx.shared.radio_mut().fault_decision(now, ap) {
            FaultVerdict::Drop => {
                fh_net::record_drop(ctx, pkt.flow, DropReason::FaultInjected);
                continue;
            }
            FaultVerdict::Pass {
                extra_delay,
                duplicate,
            } => (extra_delay, duplicate),
        };
        let arrival = ctx.shared.radio_mut().reserve_airtime(now, ap, pkt.size) + extra_delay;
        if duplicate {
            let dup_arrival =
                ctx.shared.radio_mut().reserve_airtime(now, ap, pkt.size) + extra_delay;
            ctx.shared.stats_mut().record_duplicate(pkt.flow);
            ctx.send_at(
                mh,
                dup_arrival,
                NetMsg::RadioPacket {
                    ap,
                    from: router,
                    pkt: pkt.clone(),
                },
            );
        }
        ctx.send_at(
            mh,
            arrival,
            NetMsg::RadioPacket {
                ap,
                from: router,
                pkt,
            },
        );
        sent += 1;
    }
    sent
}

/// Sends `pkt` from mobile host `mh` up to its current AP's router.
///
/// Returns `false` (recording the drop) if the host is detached.
pub fn send_uplink<S: RadioWorld>(ctx: &mut NetCtx<'_, S>, mh: NodeId, pkt: Packet) -> bool {
    let Some(ap) = ctx.shared.radio().attachment(mh) else {
        fh_net::record_drop(ctx, pkt.flow, DropReason::RadioDetached);
        return false;
    };
    let now = ctx.now();
    let (extra_delay, duplicate) = match ctx.shared.radio_mut().fault_decision(now, ap) {
        FaultVerdict::Drop => {
            fh_net::record_drop(ctx, pkt.flow, DropReason::FaultInjected);
            return false;
        }
        FaultVerdict::Pass {
            extra_delay,
            duplicate,
        } => (extra_delay, duplicate),
    };
    let router = ctx.shared.radio().ap(ap).router;
    let arrival = ctx.shared.radio_mut().reserve_airtime(now, ap, pkt.size) + extra_delay;
    if duplicate {
        let dup_arrival = ctx.shared.radio_mut().reserve_airtime(now, ap, pkt.size) + extra_delay;
        ctx.shared.stats_mut().record_duplicate(pkt.flow);
        ctx.send_at(
            router,
            dup_arrival,
            NetMsg::RadioPacket {
                ap,
                from: mh,
                pkt: pkt.clone(),
            },
        );
    }
    ctx.send_at(router, arrival, NetMsg::RadioPacket { ap, from: mh, pkt });
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use fh_net::{NetStats, Topology};
    use fh_sim::{Actor, Simulator};

    struct World {
        topo: Topology,
        stats: NetStats,
        radio: RadioEnv,
    }

    impl NetWorld for World {
        fn topology(&self) -> &Topology {
            &self.topo
        }
        fn topology_mut(&mut self) -> &mut Topology {
            &mut self.topo
        }
        fn stats(&self) -> &NetStats {
            &self.stats
        }
        fn stats_mut(&mut self) -> &mut NetStats {
            &mut self.stats
        }
    }

    impl RadioWorld for World {
        fn radio(&self) -> &RadioEnv {
            &self.radio
        }
        fn radio_mut(&mut self) -> &mut RadioEnv {
            &mut self.radio
        }
    }

    struct Sink {
        got: Vec<(SimTime, u64)>,
    }
    impl Actor<NetMsg, World> for Sink {
        fn handle(&mut self, ctx: &mut NetCtx<'_, World>, msg: NetMsg) {
            if let NetMsg::RadioPacket { pkt, .. } = msg {
                self.got.push((ctx.now(), pkt.seq));
            }
        }
    }

    fn world() -> Simulator<NetMsg, World> {
        Simulator::new(
            World {
                topo: Topology::new(),
                stats: NetStats::new(),
                radio: RadioEnv::new(WirelessSpec {
                    bandwidth_bps: 8_000_000,
                    delay: SimDuration::from_millis(1),
                }),
            },
            3,
        )
    }

    fn pkt(seq: u64) -> Packet {
        Packet::data(
            fh_net::FlowId(1),
            seq,
            "2001:db8::1".parse().unwrap(),
            "2001:db8::2".parse().unwrap(),
            fh_net::ServiceClass::RealTime,
            1000,
            SimTime::ZERO,
        )
    }

    #[test]
    fn coverage_geometry() {
        let mut env = RadioEnv::default();
        let r = Topology::new(); // unused, ids come from a simulator normally
        drop(r);
        let mut sim = world();
        let ar = sim.add_actor(Box::new(Sink { got: vec![] }));
        let ap = env.add_ap(ar, Position::new(0.0, 0.0), 112.0);
        assert!(env.ap(ap).covers(Position::new(111.9, 0.0)));
        assert!(!env.ap(ap).covers(Position::new(112.1, 0.0)));
        assert_eq!(env.ap_of_router(ar), Some(ap));
    }

    #[test]
    fn nearest_ap_sorts_first() {
        let mut sim = world();
        let ar1 = sim.add_actor(Box::new(Sink { got: vec![] }));
        let ar2 = sim.add_actor(Box::new(Sink { got: vec![] }));
        let env = sim.shared.radio_mut();
        let a = env.add_ap(ar1, Position::new(0.0, 0.0), 112.0);
        let b = env.add_ap(ar2, Position::new(212.0, 0.0), 112.0);
        // In the 12 m overlap, closer to B.
        let covering = env.aps_covering(Position::new(108.0, 0.0));
        assert_eq!(covering, vec![b, a]);
        // Outside both.
        assert!(env.aps_covering(Position::new(500.0, 0.0)).is_empty());
    }

    #[test]
    fn downlink_to_attached_host_arrives_serialized() {
        let mut sim = world();
        let ar = sim.add_actor(Box::new(Sink { got: vec![] }));
        let mh = sim.add_actor(Box::new(Sink { got: vec![] }));
        let ap = sim.shared.radio.add_ap(ar, Position::default(), 100.0);
        sim.shared.radio.attach(mh, ap);

        struct Driver {
            ap: ApId,
            mh: NodeId,
        }
        impl Actor<NetMsg, World> for Driver {
            fn handle(&mut self, ctx: &mut NetCtx<'_, World>, msg: NetMsg) {
                if let NetMsg::Start = msg {
                    for seq in 0..3 {
                        send_downlink(ctx, self.ap, self.mh, pkt(seq));
                    }
                }
            }
        }
        let d = sim.add_actor(Box::new(Driver { ap, mh }));
        sim.schedule(SimTime::ZERO, d, NetMsg::Start);
        sim.run();
        let got = &sim.actor::<Sink>(mh).unwrap().got;
        // 1000 B at 8 Mb/s = 1 ms each, +1 ms delay: arrivals at 2, 3, 4 ms.
        assert_eq!(
            got.iter().map(|&(t, _)| t).collect::<Vec<_>>(),
            vec![
                SimTime::from_millis(2),
                SimTime::from_millis(3),
                SimTime::from_millis(4)
            ]
        );
    }

    #[test]
    fn downlink_to_detached_host_is_dropped() {
        let mut sim = world();
        let ar = sim.add_actor(Box::new(Sink { got: vec![] }));
        let mh = sim.add_actor(Box::new(Sink { got: vec![] }));
        let ap = sim.shared.radio.add_ap(ar, Position::default(), 100.0);

        struct Driver {
            ap: ApId,
            mh: NodeId,
        }
        impl Actor<NetMsg, World> for Driver {
            fn handle(&mut self, ctx: &mut NetCtx<'_, World>, msg: NetMsg) {
                if let NetMsg::Start = msg {
                    assert!(!send_downlink(ctx, self.ap, self.mh, pkt(0)));
                }
            }
        }
        let d = sim.add_actor(Box::new(Driver { ap, mh }));
        sim.schedule(SimTime::ZERO, d, NetMsg::Start);
        sim.run();
        assert!(sim.actor::<Sink>(mh).unwrap().got.is_empty());
        assert_eq!(sim.shared.stats.drops(DropReason::RadioDetached), 1);
    }

    #[test]
    fn uplink_reaches_the_router() {
        let mut sim = world();
        let ar = sim.add_actor(Box::new(Sink { got: vec![] }));
        let mh = sim.add_actor(Box::new(Sink { got: vec![] }));
        let ap = sim.shared.radio.add_ap(ar, Position::default(), 100.0);
        sim.shared.radio.attach(mh, ap);

        struct Driver {
            mh: NodeId,
        }
        impl Actor<NetMsg, World> for Driver {
            fn handle(&mut self, ctx: &mut NetCtx<'_, World>, msg: NetMsg) {
                if let NetMsg::Start = msg {
                    assert!(send_uplink(ctx, self.mh, pkt(7)));
                }
            }
        }
        let d = sim.add_actor(Box::new(Driver { mh }));
        sim.schedule(SimTime::ZERO, d, NetMsg::Start);
        sim.run();
        assert_eq!(sim.actor::<Sink>(ar).unwrap().got.len(), 1);
        assert_eq!(sim.actor::<Sink>(ar).unwrap().got[0].1, 7);
    }

    #[test]
    fn tx_time_survives_u64_boundary() {
        // u32::MAX bytes * 8 * 1e9 overflows u64; on a 1 bit/s channel the
        // result saturates instead of wrapping to a tiny duration.
        let slow = WirelessSpec {
            bandwidth_bps: 1,
            delay: SimDuration::ZERO,
        };
        assert_eq!(slow.tx_time(u32::MAX), SimDuration::MAX);
    }

    #[test]
    fn faulty_ap_drops_frames_with_fault_reason() {
        let mut sim = world();
        let ar = sim.add_actor(Box::new(Sink { got: vec![] }));
        let mh = sim.add_actor(Box::new(Sink { got: vec![] }));
        let ap = sim.shared.radio.add_ap(ar, Position::default(), 100.0);
        sim.shared.radio.attach(mh, ap);
        sim.shared
            .radio
            .set_fault(ap, FaultSpec::with_loss(1.0), 17);

        struct Driver {
            ap: ApId,
            mh: NodeId,
        }
        impl Actor<NetMsg, World> for Driver {
            fn handle(&mut self, ctx: &mut NetCtx<'_, World>, msg: NetMsg) {
                if let NetMsg::Start = msg {
                    assert!(!send_downlink(ctx, self.ap, self.mh, pkt(0)));
                    assert!(!send_uplink(ctx, self.mh, pkt(1)));
                }
            }
        }
        let d = sim.add_actor(Box::new(Driver { ap, mh }));
        sim.schedule(SimTime::ZERO, d, NetMsg::Start);
        sim.run();
        assert!(sim.actor::<Sink>(mh).unwrap().got.is_empty());
        assert!(sim.actor::<Sink>(ar).unwrap().got.is_empty());
        assert_eq!(sim.shared.stats.drops(DropReason::FaultInjected), 2);
        assert_eq!(sim.shared.stats.drops(DropReason::RadioDetached), 0);
    }

    #[test]
    fn duplicating_ap_delivers_twice() {
        let mut sim = world();
        let ar = sim.add_actor(Box::new(Sink { got: vec![] }));
        let mh = sim.add_actor(Box::new(Sink { got: vec![] }));
        let ap = sim.shared.radio.add_ap(ar, Position::default(), 100.0);
        sim.shared.radio.attach(mh, ap);
        sim.shared
            .radio
            .set_fault(ap, FaultSpec::default().duplicate(1.0), 19);

        struct Driver {
            ap: ApId,
            mh: NodeId,
        }
        impl Actor<NetMsg, World> for Driver {
            fn handle(&mut self, ctx: &mut NetCtx<'_, World>, msg: NetMsg) {
                if let NetMsg::Start = msg {
                    assert!(send_downlink(ctx, self.ap, self.mh, pkt(0)));
                }
            }
        }
        let d = sim.add_actor(Box::new(Driver { ap, mh }));
        sim.schedule(SimTime::ZERO, d, NetMsg::Start);
        sim.run();
        let got = &sim.actor::<Sink>(mh).unwrap().got;
        assert_eq!(got.len(), 2, "original + duplicate");
        assert!(got[0].0 < got[1].0, "copies serialize back to back");
    }

    #[test]
    fn batched_downlink_matches_per_packet_loop() {
        // Same seed, same traffic, one world drains with a send_downlink
        // loop and the other with send_downlink_batch: every arrival
        // instant, seq, duplicate, and drop must be identical.
        fn run(batched: bool) -> (Vec<(SimTime, u64)>, u64, u64) {
            let mut sim = world();
            let ar = sim.add_actor(Box::new(Sink { got: vec![] }));
            let mh = sim.add_actor(Box::new(Sink { got: vec![] }));
            let ap = sim.shared.radio.add_ap(ar, Position::default(), 100.0);
            sim.shared.radio.attach(mh, ap);
            sim.shared
                .radio
                .set_fault(ap, FaultSpec::with_loss(0.25).duplicate(0.25), 21);

            struct Driver {
                ap: ApId,
                mh: NodeId,
                batched: bool,
            }
            impl Actor<NetMsg, World> for Driver {
                fn handle(&mut self, ctx: &mut NetCtx<'_, World>, msg: NetMsg) {
                    if let NetMsg::Start = msg {
                        let pkts: Vec<Packet> = (0..32).map(pkt).collect();
                        if self.batched {
                            send_downlink_batch(ctx, self.ap, self.mh, pkts);
                        } else {
                            for p in pkts {
                                send_downlink(ctx, self.ap, self.mh, p);
                            }
                        }
                    }
                }
            }
            let d = sim.add_actor(Box::new(Driver { ap, mh, batched }));
            sim.schedule(SimTime::ZERO, d, NetMsg::Start);
            sim.run();
            let got = sim.actor::<Sink>(mh).unwrap().got.clone();
            let dropped = sim.shared.stats.drops(DropReason::FaultInjected);
            let dups = sim.shared.stats.flow_audit(fh_net::FlowId(1)).duplicated;
            (got, dropped, dups)
        }
        let looped = run(false);
        let batched = run(true);
        assert_eq!(batched, looped);
        assert!(!batched.0.is_empty(), "fault mix should let frames through");
    }

    #[test]
    fn batched_downlink_to_detached_host_drops_each_frame() {
        let mut sim = world();
        let ar = sim.add_actor(Box::new(Sink { got: vec![] }));
        let mh = sim.add_actor(Box::new(Sink { got: vec![] }));
        let ap = sim.shared.radio.add_ap(ar, Position::default(), 100.0);

        struct Driver {
            ap: ApId,
            mh: NodeId,
        }
        impl Actor<NetMsg, World> for Driver {
            fn handle(&mut self, ctx: &mut NetCtx<'_, World>, msg: NetMsg) {
                if let NetMsg::Start = msg {
                    let pkts: Vec<Packet> = (0..5).map(pkt).collect();
                    assert_eq!(send_downlink_batch(ctx, self.ap, self.mh, pkts), 0);
                }
            }
        }
        let d = sim.add_actor(Box::new(Driver { ap, mh }));
        sim.schedule(SimTime::ZERO, d, NetMsg::Start);
        sim.run();
        assert!(sim.actor::<Sink>(mh).unwrap().got.is_empty());
        assert_eq!(sim.shared.stats.drops(DropReason::RadioDetached), 5);
    }

    #[test]
    fn cellular_aps_use_the_cellular_spec() {
        let mut sim = world();
        let ar1 = sim.add_actor(Box::new(Sink { got: vec![] }));
        let ar2 = sim.add_actor(Box::new(Sink { got: vec![] }));
        let env = sim.shared.radio_mut();
        let wlan = env.add_ap(ar1, Position::new(0.0, 0.0), 112.0);
        let cell = env.add_ap_tech(
            ar2,
            Position::new(0.0, 0.0),
            1_500.0,
            crate::RadioTechnology::Cellular,
        );
        assert_eq!(env.ap(wlan).tech, crate::RadioTechnology::Wlan);
        assert_eq!(env.ap(cell).tech, crate::RadioTechnology::Cellular);
        // The WLAN AP keeps the environment's (custom 8 Mb/s) spec; the
        // cellular AP uses the technology default until overridden.
        assert_eq!(env.spec_of(wlan), env.spec());
        assert_eq!(
            env.spec_of(cell),
            crate::RadioTechnology::Cellular.default_spec()
        );
        let custom = WirelessSpec {
            bandwidth_bps: 384_000,
            delay: SimDuration::from_millis(60),
        };
        env.set_cellular_spec(custom);
        assert_eq!(env.spec_of(cell), custom);
        assert_eq!(env.spec_of(wlan), env.spec(), "WLAN spec untouched");
    }

    #[test]
    fn cellular_downlink_pays_the_cellular_latency() {
        let mut sim = world();
        let ar = sim.add_actor(Box::new(Sink { got: vec![] }));
        let mh = sim.add_actor(Box::new(Sink { got: vec![] }));
        let ap = sim.shared.radio.add_ap_tech(
            ar,
            Position::default(),
            1_500.0,
            crate::RadioTechnology::Cellular,
        );
        sim.shared.radio.set_cellular_spec(WirelessSpec {
            bandwidth_bps: 2_000_000,
            delay: SimDuration::from_millis(40),
        });
        sim.shared.radio.attach(mh, ap);

        struct Driver {
            ap: ApId,
            mh: NodeId,
        }
        impl Actor<NetMsg, World> for Driver {
            fn handle(&mut self, ctx: &mut NetCtx<'_, World>, msg: NetMsg) {
                if let NetMsg::Start = msg {
                    send_downlink(ctx, self.ap, self.mh, pkt(0));
                }
            }
        }
        let d = sim.add_actor(Box::new(Driver { ap, mh }));
        sim.schedule(SimTime::ZERO, d, NetMsg::Start);
        sim.run();
        let got = &sim.actor::<Sink>(mh).unwrap().got;
        // 1000 B at 2 Mb/s = 4 ms serialization + 40 ms access delay.
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, SimTime::from_millis(44));
    }

    #[test]
    fn aux_attachment_gates_downlink_on_either_interface() {
        let mut sim = world();
        let ar1 = sim.add_actor(Box::new(Sink { got: vec![] }));
        let ar2 = sim.add_actor(Box::new(Sink { got: vec![] }));
        let mh = sim.add_actor(Box::new(Sink { got: vec![] }));
        let env = &mut sim.shared.radio;
        let wlan = env.add_ap(ar1, Position::new(0.0, 0.0), 112.0);
        let cell = env.add_ap_tech(
            ar2,
            Position::new(0.0, 0.0),
            1_500.0,
            crate::RadioTechnology::Cellular,
        );
        env.attach(mh, wlan);
        env.attach_aux(mh, cell);
        assert!(env.is_attached(mh, wlan));
        assert!(env.is_attached(mh, cell));
        assert_eq!(env.attachment(mh), Some(wlan), "serving stays WLAN");
        assert_eq!(env.aux_attachment(mh), Some(cell));
        assert_eq!(env.attached_mhs(cell), vec![mh]);

        // Promote: cellular becomes serving, WLAN stays as secondary.
        assert_eq!(env.promote_aux(mh), Some(cell));
        assert_eq!(env.attachment(mh), Some(cell));
        assert_eq!(env.aux_attachment(mh), Some(wlan));
        assert!(env.is_attached(mh, wlan), "old link still receives");

        // Old WLAN coverage lost: only the cellular association remains.
        assert_eq!(env.detach_aux(mh), Some(wlan));
        assert!(!env.is_attached(mh, wlan));
        assert!(env.is_attached(mh, cell));
        env.detach_all(mh);
        assert!(!env.is_attached(mh, cell));
        assert_eq!(env.promote_aux(mh), None, "nothing to promote");
    }

    #[test]
    fn reattachment_replaces_association() {
        let mut sim = world();
        let ar1 = sim.add_actor(Box::new(Sink { got: vec![] }));
        let ar2 = sim.add_actor(Box::new(Sink { got: vec![] }));
        let mh = sim.add_actor(Box::new(Sink { got: vec![] }));
        let env = &mut sim.shared.radio;
        let a = env.add_ap(ar1, Position::new(0.0, 0.0), 100.0);
        let b = env.add_ap(ar2, Position::new(50.0, 0.0), 100.0);
        env.attach(mh, a);
        assert_eq!(env.attachment(mh), Some(a));
        env.attach(mh, b);
        assert_eq!(env.attachment(mh), Some(b));
        assert_eq!(env.attached_mhs(a), vec![]);
        assert_eq!(env.attached_mhs(b), vec![mh]);
        assert_eq!(env.detach(mh), Some(b));
        assert_eq!(env.attachment(mh), None);
    }
}
