//! Radio technologies and host interfaces.
//!
//! The thesis evaluates horizontal WLAN→WLAN handovers only; the vertical
//! case — WLAN↔cellular, where bandwidth, latency and coverage are
//! asymmetric — is where buffer management matters most (SafetyNet,
//! MIH-triggered FPMIPv6). This module names the axis along which the two
//! differ: a [`RadioTechnology`] carries the per-technology channel
//! parameters, coverage scale and black-out behaviour, and an [`IfaceId`]
//! distinguishes the radios of a multi-homed host so a second interface can
//! come up on the target technology *before* the serving one goes down
//! (make-before-break).

use serde::{Deserialize, Serialize};

use crate::radio::WirelessSpec;
use fh_sim::SimDuration;

/// The link-layer technology behind one access point.
///
/// Two concrete technologies are modelled:
///
/// * [`RadioTechnology::Wlan`] — the thesis' 802.11b substrate: high rate,
///   small cells, and a hard L2 black-out (~200 ms) on every handoff
///   because the single card must leave the old channel to join the new.
/// * [`RadioTechnology::Cellular`] — a wide-area overlay: lower rate,
///   higher access latency, a coverage disc an order of magnitude larger,
///   and **no micro-black-out** — a dedicated second radio performs network
///   entry while the WLAN card keeps receiving (make-before-break).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RadioTechnology {
    /// 802.11-style wireless LAN (the thesis' radio).
    #[default]
    Wlan,
    /// Wide-area cellular overlay (UMTS/LTE-flavoured).
    Cellular,
}

impl RadioTechnology {
    /// Short human-readable label ("wlan" / "cellular").
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            RadioTechnology::Wlan => "wlan",
            RadioTechnology::Cellular => "cellular",
        }
    }

    /// Default channel parameters for the technology.
    ///
    /// WLAN keeps the 802.11b defaults (11 Mb/s, 1 ms). Cellular defaults
    /// to 2 Mb/s with a 40 ms access delay — the bandwidth/latency
    /// asymmetry that makes vertical handovers interesting.
    #[must_use]
    pub fn default_spec(self) -> WirelessSpec {
        match self {
            RadioTechnology::Wlan => WirelessSpec::default_80211b(),
            RadioTechnology::Cellular => WirelessSpec {
                bandwidth_bps: 2_000_000,
                delay: SimDuration::from_millis(40),
            },
        }
    }

    /// Default coverage radius in meters (112 m WLAN cell vs a wide-area
    /// 1500 m cellular sector).
    #[must_use]
    pub fn default_radius_m(self) -> f64 {
        match self {
            RadioTechnology::Wlan => 112.0,
            RadioTechnology::Cellular => 1_500.0,
        }
    }

    /// `true` if switching *onto* this technology forces the serving radio
    /// through an L2 black-out. WLAN does (one card, one channel); cellular
    /// does not — a multi-homed host brings the second radio up while the
    /// first keeps receiving.
    #[must_use]
    pub fn micro_blackout(self) -> bool {
        match self {
            RadioTechnology::Wlan => true,
            RadioTechnology::Cellular => false,
        }
    }
}

/// Identifier of one radio interface on a multi-homed mobile host.
///
/// Interface 0 is the host's primary (WLAN) radio — every legacy
/// single-interface scenario uses only this one. Interface 1 is the
/// wide-area radio a vertical-handover host brings up for
/// make-before-break.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct IfaceId(pub u8);

impl IfaceId {
    /// The primary (WLAN) interface every host has.
    pub const PRIMARY: IfaceId = IfaceId(0);
    /// The wide-area secondary interface of a multi-homed host.
    pub const WIDE_AREA: IfaceId = IfaceId(1);
}

impl std::fmt::Display for IfaceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "if{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wlan_defaults_match_the_thesis_substrate() {
        let spec = RadioTechnology::Wlan.default_spec();
        assert_eq!(spec, WirelessSpec::default_80211b());
        assert!((RadioTechnology::Wlan.default_radius_m() - 112.0).abs() < f64::EPSILON);
        assert!(RadioTechnology::Wlan.micro_blackout());
    }

    #[test]
    fn cellular_is_slower_wider_and_blackout_free() {
        let wlan = RadioTechnology::Wlan.default_spec();
        let cell = RadioTechnology::Cellular.default_spec();
        assert!(cell.bandwidth_bps < wlan.bandwidth_bps);
        assert!(cell.delay > wlan.delay);
        assert!(
            RadioTechnology::Cellular.default_radius_m() > RadioTechnology::Wlan.default_radius_m()
        );
        assert!(!RadioTechnology::Cellular.micro_blackout());
    }

    #[test]
    fn labels_and_iface_display() {
        assert_eq!(RadioTechnology::Wlan.label(), "wlan");
        assert_eq!(RadioTechnology::Cellular.label(), "cellular");
        assert_eq!(IfaceId::PRIMARY.to_string(), "if0");
        assert_eq!(IfaceId::WIDE_AREA.to_string(), "if1");
        assert!(IfaceId::PRIMARY < IfaceId::WIDE_AREA);
    }

    #[test]
    fn default_technology_is_wlan() {
        assert_eq!(RadioTechnology::default(), RadioTechnology::Wlan);
    }
}
