//! 802.21-style Media Independent Handover (MIH) link triggers.
//!
//! The legacy trigger path raises an L2 source trigger from raw geometry
//! (distance increasing) or a raw RSSI hysteresis crossing. MIH instead
//! standardizes three *link events* that any technology can emit:
//!
//! * **`LinkGoingDown`** — the serving link is predicted to fail soon:
//!   the signal has stayed within a configurable margin of the sensitivity
//!   floor for a dwell period. This is the predictive cue the fast
//!   handover protocol anticipates on.
//! * **`LinkDown`** — the serving link is gone (signal below sensitivity
//!   or out of coverage).
//! * **`LinkUp`** — a link became usable.
//!
//! [`MihEngine`] is a pure, deterministic state machine: feed it one RSSI
//! sample per radio tick and it emits at most one event. Two properties are
//! enforced by construction and pinned by tests:
//!
//! 1. **Ordering** — on a collapsing link, `LinkGoingDown` is always
//!    reported before `LinkDown` (the dwell counter trips at the margin
//!    strictly above the sensitivity floor).
//! 2. **No trigger storms** — `LinkGoingDown` latches once per attachment
//!    epoch; a flapping signal around the margin cannot re-arm it until
//!    the link has gone down and come back up.

use serde::{Deserialize, Serialize};

use crate::signal::SignalModel;

/// An 802.21 link event, technology-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MihEvent {
    /// The serving link became usable.
    LinkUp,
    /// The serving link is predicted to fail soon (predictive trigger).
    LinkGoingDown,
    /// The serving link failed.
    LinkDown,
}

/// Tuning knobs for the MIH event derivation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MihConfig {
    /// `LinkGoingDown` fires when the serving RSSI stays below
    /// `sensitivity + going_down_margin_db` for [`MihConfig::dwell`]
    /// consecutive samples.
    pub going_down_margin_db: f64,
    /// Consecutive degraded samples required before `LinkGoingDown`
    /// (debounces single-sample fades).
    pub dwell: u32,
}

impl Default for MihConfig {
    /// 8 dB margin, 2-sample dwell: with the default [`SignalModel`] and a
    /// 50 ms sample tick this predicts link failure ≈100 ms to a few
    /// seconds ahead, depending on speed.
    fn default() -> Self {
        MihConfig {
            going_down_margin_db: 8.0,
            dwell: 2,
        }
    }
}

/// Per-link MIH event derivation state.
///
/// One engine instance tracks one serving link. The owner reports
/// attachment changes via [`MihEngine::on_attach`] / [`MihEngine::on_detach`]
/// and feeds RSSI samples via [`MihEngine::on_sample`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MihEngine {
    config: MihConfig,
    signal: SignalModel,
    /// Consecutive samples inside the going-down margin.
    degraded: u32,
    /// `LinkGoingDown` already reported for this attachment epoch.
    latched: bool,
    /// The link is currently up.
    up: bool,
}

impl MihEngine {
    /// Creates an engine for one serving link.
    #[must_use]
    pub fn new(config: MihConfig, signal: SignalModel) -> Self {
        MihEngine {
            config,
            signal,
            degraded: 0,
            latched: false,
            up: false,
        }
    }

    /// The signal model events are derived from.
    #[must_use]
    pub fn signal(&self) -> SignalModel {
        self.signal
    }

    /// `true` once `LinkGoingDown` has fired for the current attachment.
    #[must_use]
    pub fn going_down(&self) -> bool {
        self.latched
    }

    /// The owner attached (or re-attached) to a link: resets the dwell
    /// counter and the `LinkGoingDown` latch, and reports `LinkUp`.
    pub fn on_attach(&mut self) -> MihEvent {
        self.degraded = 0;
        self.latched = false;
        self.up = true;
        MihEvent::LinkUp
    }

    /// The owner lost its link for a non-signal reason (e.g. the protocol
    /// switched away). Reports `LinkDown` if the link was up.
    pub fn on_detach(&mut self) -> Option<MihEvent> {
        let was_up = self.up;
        self.up = false;
        self.degraded = 0;
        was_up.then_some(MihEvent::LinkDown)
    }

    /// Feeds one RSSI sample of the serving link; returns at most one
    /// event. `LinkGoingDown` fires once per attachment epoch after
    /// [`MihConfig::dwell`] consecutive samples within the margin;
    /// `LinkDown` fires when the signal falls below sensitivity.
    pub fn on_sample(&mut self, serving_rssi_dbm: f64) -> Option<MihEvent> {
        if !self.up {
            return None;
        }
        if !self.signal.is_usable(serving_rssi_dbm) {
            // A collapse so fast the margin was never sampled still reports
            // LinkGoingDown first: the predictive event precedes the
            // failure event even in the same tick's event cascade.
            self.up = false;
            self.degraded = 0;
            if !self.latched {
                self.latched = true;
                return Some(MihEvent::LinkGoingDown);
            }
            return Some(MihEvent::LinkDown);
        }
        let threshold = self.signal.sensitivity_dbm + self.config.going_down_margin_db;
        if serving_rssi_dbm < threshold {
            self.degraded += 1;
            if self.degraded >= self.config.dwell && !self.latched {
                self.latched = true;
                return Some(MihEvent::LinkGoingDown);
            }
        } else {
            self.degraded = 0;
        }
        None
    }

    /// `true` while the engine considers the serving link up.
    #[must_use]
    pub fn is_up(&self) -> bool {
        self.up
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fh_sim::Rng64;

    fn engine() -> MihEngine {
        MihEngine::new(MihConfig::default(), SignalModel::default())
    }

    /// Walks a host away from the AP at `speed` m/s, 50 ms ticks, and
    /// returns the emitted event sequence.
    fn collapse_events(speed: f64) -> Vec<MihEvent> {
        let mut e = engine();
        let mut events = vec![e.on_attach()];
        let model = e.signal();
        for tick in 1..10_000 {
            let d = speed * 0.05 * f64::from(tick);
            let rssi = model.rssi_at(d);
            if let Some(ev) = e.on_sample(rssi) {
                events.push(ev);
                if ev == MihEvent::LinkDown {
                    break;
                }
            }
            if !e.is_up() {
                // The link failed; emit the trailing LinkDown if the
                // cascade started with LinkGoingDown.
                events.push(MihEvent::LinkDown);
                break;
            }
        }
        events
    }

    #[test]
    fn going_down_precedes_down_at_walking_speed() {
        let events = collapse_events(10.0);
        assert_eq!(
            events,
            vec![
                MihEvent::LinkUp,
                MihEvent::LinkGoingDown,
                MihEvent::LinkDown
            ]
        );
    }

    #[test]
    fn going_down_precedes_down_even_on_instant_collapse() {
        // Vehicular speed: the signal can cross the whole margin between
        // two samples, but the predictive event still comes first.
        let events = collapse_events(500.0);
        let lgd = events
            .iter()
            .position(|&e| e == MihEvent::LinkGoingDown)
            .expect("LinkGoingDown present");
        let down = events
            .iter()
            .position(|&e| e == MihEvent::LinkDown)
            .expect("LinkDown present");
        assert!(lgd < down, "ordering violated: {events:?}");
    }

    #[test]
    fn dwell_debounces_single_sample_fades() {
        let mut e = engine();
        e.on_attach();
        let model = e.signal();
        let deep = model.sensitivity_dbm + 1.0; // inside the margin
        let fine = model.sensitivity_dbm + 20.0;
        assert_eq!(e.on_sample(deep), None, "one degraded sample: no event");
        assert_eq!(e.on_sample(fine), None, "recovered: counter resets");
        assert_eq!(e.on_sample(deep), None);
        assert_eq!(
            e.on_sample(deep),
            Some(MihEvent::LinkGoingDown),
            "dwell=2 consecutive degraded samples trip the trigger"
        );
    }

    /// Seeded flapping sweep: a noisy signal oscillating around the margin
    /// must produce exactly one `LinkGoingDown` per attachment epoch —
    /// never a storm — across many seeds.
    #[test]
    fn no_trigger_storm_under_flapping_across_seeds() {
        for seed in 0..64u64 {
            let mut rng = Rng64::seed_from(seed);
            let mut e = engine();
            e.on_attach();
            let model = e.signal();
            let mut goings_down = 0u32;
            let mut downs = 0u32;
            for _ in 0..2_000 {
                // Flap ±6 dB around the going-down threshold, with rare
                // deep fades below sensitivity.
                let jitter = (rng.gen_range_u64(1_200) as f64) / 100.0 - 6.0;
                let base = model.sensitivity_dbm + 8.0;
                let rssi = if rng.gen_range_u64(100) == 0 {
                    model.sensitivity_dbm - 5.0
                } else {
                    base + jitter
                };
                match e.on_sample(rssi) {
                    Some(MihEvent::LinkGoingDown) => goings_down += 1,
                    Some(MihEvent::LinkDown) => downs += 1,
                    _ => {}
                }
                if !e.is_up() {
                    downs += 1;
                    // The radio re-attaches (blackout flapping): new epoch.
                    e.on_attach();
                    goings_down = 0;
                }
                assert!(
                    goings_down <= 1,
                    "seed {seed}: LinkGoingDown storm within one epoch"
                );
            }
            let _ = downs;
        }
    }

    #[test]
    fn detach_reports_down_once() {
        let mut e = engine();
        e.on_attach();
        assert_eq!(e.on_detach(), Some(MihEvent::LinkDown));
        assert_eq!(e.on_detach(), None, "already down");
        assert_eq!(e.on_sample(-30.0), None, "samples while down are inert");
        assert!(!e.is_up());
    }

    #[test]
    fn reattach_rearms_the_latch() {
        let mut e = engine();
        e.on_attach();
        let deep = e.signal().sensitivity_dbm + 1.0;
        assert_eq!(e.on_sample(deep), None);
        assert_eq!(e.on_sample(deep), Some(MihEvent::LinkGoingDown));
        assert!(e.going_down());
        assert_eq!(e.on_sample(deep), None, "latched: no repeat");
        e.on_detach();
        assert_eq!(e.on_attach(), MihEvent::LinkUp);
        assert!(!e.going_down());
        assert_eq!(e.on_sample(deep), None);
        assert_eq!(
            e.on_sample(deep),
            Some(MihEvent::LinkGoingDown),
            "new epoch re-arms the predictive trigger"
        );
    }
}
