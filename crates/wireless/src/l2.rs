//! The mobile host's link-layer process: coverage sampling, handoff
//! triggers and the L2 black-out.
//!
//! [`MhRadio`] is a component embedded in a mobile-host actor. It samples
//! the mobility model on a timer and raises [`L2Event`]s to its owner:
//!
//! * **`SourceTrigger` (L2-ST)** — the signal from the current AP is
//!   degrading (distance increasing) while another AP covers the host:
//!   the cue for the Fast Handover protocol to start anticipating
//!   (thesis §3.2.2.1).
//! * **`LinkDown` / `LinkUp`** — bracket the L2 black-out. Between them the
//!   host can neither send nor receive; the black-out length is
//!   configurable (60–400 ms per the 802.11 measurement study the thesis
//!   cites; 200 ms in its simulations).
//!
//! The *protocol* decides when to actually switch by calling
//! [`MhRadio::begin_handoff`]; if the host runs out of coverage first, the
//! radio detaches on its own and re-attaches to the best AP it finds —
//! modelling a handoff without anticipation.

use fh_sim::{SimDuration, SimTime};

use fh_net::{ApId, L2Event, NetCtx, NetMsg, NodeId, TimerKind};

/// Emits an L2 event to the owning actor and mirrors it into the protocol
/// trace (when tracing is enabled).
fn emit_l2<S: RadioWorld>(ctx: &mut NetCtx<'_, S>, mh: NodeId, event: L2Event) {
    let now = ctx.now();
    ctx.shared
        .stats_mut()
        .trace
        .push(now, fh_net::trace::TraceEvent::L2 { mh, event });
    ctx.send_at(mh, now, NetMsg::L2(event));
}

use crate::mih::MihEngine;
use crate::position::{Mobility, Position};
use crate::radio::RadioWorld;

/// How the radio decides to raise an L2 source trigger.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum TriggerMode {
    /// The legacy rules: geometric signal-degrading, or raw RSSI
    /// hysteresis when [`RadioConfig::signal`] is set.
    #[default]
    Legacy,
    /// 802.21 Media Independent Handover: a [`MihEngine`] derives
    /// `LinkGoingDown` from the serving signal, which maps onto the
    /// existing source-trigger path. Technology-agnostic and storm-free
    /// by construction.
    Mih,
}

/// Configuration for a mobile host's radio process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadioConfig {
    /// How often the radio samples position/signal.
    pub sample_every: SimDuration,
    /// Length of the L2 black-out between detach and attach (200 ms in the
    /// thesis' simulations). For make-before-break this is the network
    /// entry time of the second radio instead — the serving link keeps
    /// receiving throughout.
    pub l2_handoff_delay: SimDuration,
    /// When set, triggers use received signal strength with hysteresis
    /// (the way real stations decide) instead of the geometric
    /// signal-degrading rule. Association limits stay geometric.
    pub signal: Option<crate::SignalModel>,
    /// Source-trigger derivation (legacy rules by default).
    pub trigger: TriggerMode,
    /// MIH tuning, used when `trigger` is [`TriggerMode::Mih`].
    pub mih: crate::MihConfig,
    /// The host carries a second wide-area radio: cross-technology
    /// handoffs run make-before-break (no L2 black-out).
    pub multi_iface: bool,
}

impl Default for RadioConfig {
    fn default() -> Self {
        RadioConfig {
            sample_every: SimDuration::from_millis(50),
            l2_handoff_delay: SimDuration::from_millis(200),
            signal: None,
            trigger: TriggerMode::Legacy,
            mih: crate::MihConfig::default(),
            multi_iface: false,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum RadioState {
    /// Not started yet.
    Off,
    /// Associated with an AP.
    Attached { ap: ApId, triggered: bool },
    /// In the L2 black-out, will associate with `target`.
    BlackOut { target: ApId },
    /// Make-before-break: still served by `old` while the second radio
    /// performs network entry toward `target`.
    Bringing { old: ApId, target: ApId },
    /// Detached with no target; scanning for coverage.
    Searching,
}

/// The link-layer radio component of one mobile host.
#[derive(Debug)]
pub struct MhRadio {
    mh: NodeId,
    mobility: Mobility,
    config: RadioConfig,
    state: RadioState,
    handoff_seq: u64,
    prev_dist: Option<f64>,
    /// MIH event derivation for the serving link (present in MIH mode).
    mih: Option<MihEngine>,
    /// Completed handoffs (LinkUp count after the initial attach).
    pub handoffs_completed: u64,
}

impl MhRadio {
    /// Creates a radio for mobile host `mh` following `mobility`.
    #[must_use]
    pub fn new(mh: NodeId, mobility: Mobility, config: RadioConfig) -> Self {
        let mih = (config.trigger == TriggerMode::Mih)
            .then(|| MihEngine::new(config.mih, config.signal.unwrap_or_default()));
        MhRadio {
            mh,
            mobility,
            config,
            state: RadioState::Off,
            handoff_seq: 0,
            prev_dist: None,
            mih,
            handoffs_completed: 0,
        }
    }

    /// The host's position at `t`.
    #[must_use]
    pub fn position_at(&self, t: SimTime) -> Position {
        self.mobility.position_at(t)
    }

    /// The AP the radio's serving interface is currently associated with.
    #[must_use]
    pub fn current_ap(&self) -> Option<ApId> {
        match self.state {
            RadioState::Attached { ap, .. } => Some(ap),
            RadioState::Bringing { old, .. } => Some(old),
            _ => None,
        }
    }

    /// `true` while associated (including make-before-break, where the old
    /// link keeps serving).
    #[must_use]
    pub fn is_attached(&self) -> bool {
        matches!(
            self.state,
            RadioState::Attached { .. } | RadioState::Bringing { .. }
        )
    }

    /// Brings the radio up: associates with the nearest covering AP (if
    /// any), emits `LinkUp`, and starts the sampling timer. Call once, from
    /// the owner's `Start` handler.
    pub fn start<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>) {
        let pos = self.position_at(ctx.now());
        if let Some(&ap) = ctx.shared.radio().aps_covering(pos).first() {
            ctx.shared.radio_mut().attach(self.mh, ap);
            self.state = RadioState::Attached {
                ap,
                triggered: false,
            };
            if let Some(m) = self.mih.as_mut() {
                let _ = m.on_attach();
            }
            emit_l2(ctx, self.mh, L2Event::LinkUp { ap });
        } else {
            self.state = RadioState::Searching;
        }
        ctx.send_self(
            self.config.sample_every,
            NetMsg::Timer {
                kind: TimerKind::Mobility,
                token: 0,
            },
        );
    }

    /// Starts a handoff toward `target`.
    ///
    /// Same-technology (or single-radio) handoffs detach first — emitting
    /// `LinkDown` and entering the L2 black-out — and attach after
    /// `l2_handoff_delay`. A multi-homed host switching technologies runs
    /// **make-before-break** instead: the second radio associates with
    /// `target` immediately and performs network entry for
    /// `l2_handoff_delay` while the serving link keeps receiving; no
    /// `LinkDown` is emitted and no black-out occurs.
    ///
    /// No-op if a handoff is already in progress or the radio is already
    /// on `target`.
    pub fn begin_handoff<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>, target: ApId) {
        let RadioState::Attached { ap, .. } = self.state else {
            return;
        };
        if ap == target {
            return;
        }
        let cross_tech = ctx.shared.radio().ap(target).tech != ctx.shared.radio().ap(ap).tech;
        if self.config.multi_iface && cross_tech {
            ctx.shared.radio_mut().attach_aux(self.mh, target);
            self.state = RadioState::Bringing { old: ap, target };
            self.handoff_seq += 1;
            ctx.send_self(
                self.config.l2_handoff_delay,
                NetMsg::Timer {
                    kind: TimerKind::Attach,
                    token: self.handoff_seq,
                },
            );
            return;
        }
        ctx.shared.radio_mut().detach(self.mh);
        self.state = RadioState::BlackOut { target };
        self.handoff_seq += 1;
        if let Some(m) = self.mih.as_mut() {
            let _ = m.on_detach();
        }
        emit_l2(ctx, self.mh, L2Event::LinkDown { ap });
        ctx.send_self(
            self.config.l2_handoff_delay,
            NetMsg::Timer {
                kind: TimerKind::Attach,
                token: self.handoff_seq,
            },
        );
    }

    /// Suspends the radio for `duration` and re-associates with the same
    /// AP afterwards — a firmware scan pause or an interference burst, the
    /// "poor connection quality" episode of thesis §3.3. Emits `LinkDown`
    /// now and `LinkUp` at resume. No-op while detached.
    pub fn suspend<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>, duration: SimDuration) {
        let RadioState::Attached { ap, .. } = self.state else {
            return;
        };
        ctx.shared.radio_mut().detach(self.mh);
        self.state = RadioState::BlackOut { target: ap };
        self.handoff_seq += 1;
        if let Some(m) = self.mih.as_mut() {
            let _ = m.on_detach();
        }
        emit_l2(ctx, self.mh, L2Event::LinkDown { ap });
        ctx.send_self(
            duration,
            NetMsg::Timer {
                kind: TimerKind::Attach,
                token: self.handoff_seq,
            },
        );
    }

    /// Feeds a timer event to the radio. Returns `true` if the event was
    /// consumed (owners must not interpret consumed timers themselves).
    pub fn on_timer<S: RadioWorld>(
        &mut self,
        ctx: &mut NetCtx<'_, S>,
        kind: TimerKind,
        token: u64,
    ) -> bool {
        match kind {
            TimerKind::Mobility => {
                self.sample(ctx);
                ctx.send_self(
                    self.config.sample_every,
                    NetMsg::Timer {
                        kind: TimerKind::Mobility,
                        token: 0,
                    },
                );
                true
            }
            TimerKind::Attach => {
                if token != self.handoff_seq {
                    return true; // stale attach from a superseded handoff
                }
                match self.state {
                    RadioState::BlackOut { target } => {
                        ctx.shared.radio_mut().attach(self.mh, target);
                        self.state = RadioState::Attached {
                            ap: target,
                            triggered: false,
                        };
                        self.prev_dist = None;
                        self.handoffs_completed += 1;
                        if let Some(m) = self.mih.as_mut() {
                            let _ = m.on_attach();
                        }
                        emit_l2(ctx, self.mh, L2Event::LinkUp { ap: target });
                    }
                    RadioState::Bringing { target, .. } => {
                        // Network entry finished: the second radio becomes
                        // the serving interface; the old link stays
                        // associated so in-flight frames still arrive.
                        ctx.shared.radio_mut().promote_aux(self.mh);
                        self.state = RadioState::Attached {
                            ap: target,
                            triggered: false,
                        };
                        self.prev_dist = None;
                        self.handoffs_completed += 1;
                        if let Some(m) = self.mih.as_mut() {
                            let _ = m.on_attach();
                        }
                        emit_l2(ctx, self.mh, L2Event::LinkUp { ap: target });
                    }
                    _ => {}
                }
                true
            }
            _ => false,
        }
    }

    fn sample<S: RadioWorld>(&mut self, ctx: &mut NetCtx<'_, S>) {
        let now = ctx.now();
        let pos = self.position_at(now);
        match self.state {
            RadioState::Off | RadioState::BlackOut { .. } | RadioState::Bringing { .. } => {}
            RadioState::Searching => {
                // Scan: associate with the best covering AP after a full
                // black-out (scan + associate, no anticipation possible).
                if let Some(&ap) = ctx.shared.radio().aps_covering(pos).first() {
                    self.state = RadioState::BlackOut { target: ap };
                    self.handoff_seq += 1;
                    ctx.send_self(
                        self.config.l2_handoff_delay,
                        NetMsg::Timer {
                            kind: TimerKind::Attach,
                            token: self.handoff_seq,
                        },
                    );
                }
            }
            RadioState::Attached { ap, triggered } => {
                // Retire the old make-before-break link once the host
                // leaves its coverage: the last moment frames multicast on
                // the old path can still arrive.
                if let Some(old_ap) = ctx.shared.radio().aux_attachment(self.mh) {
                    if !ctx.shared.radio().ap(old_ap).covers(pos) {
                        ctx.shared.radio_mut().detach_aux(self.mh);
                        emit_l2(ctx, self.mh, L2Event::LinkDown { ap: old_ap });
                    }
                }
                let ap_info = *ctx.shared.radio().ap(ap);
                let dist = ap_info.pos.distance(pos);
                let degrading = self.prev_dist.is_some_and(|prev| dist > prev + 1e-9);
                self.prev_dist = Some(dist);
                if !ap_info.covers(pos) {
                    // Walked out of coverage before the protocol reacted.
                    ctx.shared.radio_mut().detach(self.mh);
                    if let Some(m) = self.mih.as_mut() {
                        let _ = m.on_detach();
                    }
                    emit_l2(ctx, self.mh, L2Event::LinkDown { ap });
                    let next = ctx
                        .shared
                        .radio()
                        .aps_covering(pos)
                        .into_iter()
                        .find(|&c| c != ap);
                    if let Some(target) = next {
                        self.state = RadioState::BlackOut { target };
                        self.handoff_seq += 1;
                        ctx.send_self(
                            self.config.l2_handoff_delay,
                            NetMsg::Timer {
                                kind: TimerKind::Attach,
                                token: self.handoff_seq,
                            },
                        );
                    } else {
                        self.state = RadioState::Searching;
                    }
                    return;
                }
                let trigger_candidate = if let Some(m) = self.mih.as_mut() {
                    // MIH mode: the 802.21 LinkGoingDown event — derived
                    // from the serving signal, independent of the target's
                    // technology — is the predictive cue. Map it onto the
                    // existing source-trigger path, aiming at the best
                    // covering alternative. The model is re-budgeted to the
                    // serving cell's size so each medium judges its own
                    // link: a blanket cellular sector is healthy at
                    // distances that would end a WLAN association.
                    let serving = m.signal().scaled_to_range(ap_info.radius).rssi_at(dist);
                    let _ = m.on_sample(serving);
                    if m.going_down() {
                        // Latched LinkGoingDown: trigger as soon as any
                        // alternative AP covers the host (it may appear
                        // later than the event itself).
                        ctx.shared
                            .radio()
                            .aps_covering(pos)
                            .into_iter()
                            .find(|&c| c != ap)
                    } else {
                        None
                    }
                } else if let Some(model) = self.config.signal {
                    // Signal mode: a neighbor must beat the serving AP by
                    // the hysteresis margin.
                    let serving = model.rssi_at(dist);
                    ctx.shared
                        .radio()
                        .aps_covering(pos)
                        .into_iter()
                        .filter(|&c| c != ap)
                        .find(|&c| {
                            let d = ctx.shared.radio().ap(c).pos.distance(pos);
                            let candidate = model.rssi_at(d);
                            model.is_usable(candidate) && model.should_switch(serving, candidate)
                        })
                } else if degrading {
                    ctx.shared
                        .radio()
                        .aps_covering(pos)
                        .into_iter()
                        .find(|&c| c != ap)
                } else {
                    None
                };
                if !triggered {
                    if let Some(next) = trigger_candidate {
                        self.state = RadioState::Attached {
                            ap,
                            triggered: true,
                        };
                        emit_l2(ctx, self.mh, L2Event::SourceTrigger { current: ap, next });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radio::{RadioEnv, WirelessSpec};
    use fh_net::{NetStats, NetWorld, Topology};
    use fh_sim::{Actor, Simulator};

    struct World {
        topo: Topology,
        stats: NetStats,
        radio: RadioEnv,
    }
    impl NetWorld for World {
        fn topology(&self) -> &Topology {
            &self.topo
        }
        fn topology_mut(&mut self) -> &mut Topology {
            &mut self.topo
        }
        fn stats(&self) -> &NetStats {
            &self.stats
        }
        fn stats_mut(&mut self) -> &mut NetStats {
            &mut self.stats
        }
    }
    impl RadioWorld for World {
        fn radio(&self) -> &RadioEnv {
            &self.radio
        }
        fn radio_mut(&mut self) -> &mut RadioEnv {
            &mut self.radio
        }
    }

    /// A mobile host that records its L2 events and (optionally) reacts to
    /// triggers by switching immediately — a degenerate "protocol".
    struct Mh {
        radio: Option<MhRadio>,
        events: Vec<(SimTime, L2Event)>,
        switch_on_trigger: bool,
    }

    impl Actor<NetMsg, World> for Mh {
        fn handle(&mut self, ctx: &mut NetCtx<'_, World>, msg: NetMsg) {
            let mut radio = self.radio.take().expect("radio installed");
            match msg {
                NetMsg::Start => radio.start(ctx),
                NetMsg::Timer { kind, token } => {
                    let _ = radio.on_timer(ctx, kind, token);
                }
                NetMsg::L2(ev) => {
                    self.events.push((ctx.now(), ev));
                    if self.switch_on_trigger {
                        if let L2Event::SourceTrigger { next, .. } = ev {
                            radio.begin_handoff(ctx, next);
                        }
                    }
                }
                _ => {}
            }
            self.radio = Some(radio);
        }
    }

    struct Nop;
    impl Actor<NetMsg, World> for Nop {
        fn handle(&mut self, _: &mut NetCtx<'_, World>, _: NetMsg) {}
    }

    /// Two APs in the thesis geometry: centres 212 m apart, radius 112 m.
    fn thesis_world(
        switch_on_trigger: bool,
        mobility: Mobility,
    ) -> (Simulator<NetMsg, World>, fh_sim::ActorId) {
        let mut sim = Simulator::new(
            World {
                topo: Topology::new(),
                stats: NetStats::new(),
                radio: RadioEnv::new(WirelessSpec::default_80211b()),
            },
            5,
        );
        let ar1 = sim.add_actor(Box::new(Nop));
        let ar2 = sim.add_actor(Box::new(Nop));
        sim.shared.radio.add_ap(ar1, Position::new(0.0, 0.0), 112.0);
        sim.shared
            .radio
            .add_ap(ar2, Position::new(212.0, 0.0), 112.0);
        let mh = sim.add_actor(Box::new(Mh {
            radio: None,
            events: vec![],
            switch_on_trigger,
        }));
        let radio = MhRadio::new(mh, mobility, RadioConfig::default());
        sim.actor_mut::<Mh>(mh).unwrap().radio = Some(radio);
        sim.schedule(SimTime::ZERO, mh, NetMsg::Start);
        (sim, mh)
    }

    fn walk() -> Mobility {
        Mobility::linear(Position::new(0.0, 0.0), Position::new(212.0, 0.0), 10.0)
    }

    #[test]
    fn initial_attach_emits_link_up() {
        let (mut sim, mh) = thesis_world(false, Mobility::Stationary(Position::new(0.0, 0.0)));
        sim.run_until(SimTime::from_secs(1));
        let events = &sim.actor::<Mh>(mh).unwrap().events;
        assert!(matches!(events[0].1, L2Event::LinkUp { ap } if ap == ApId(0)));
    }

    #[test]
    fn trigger_fires_inside_the_overlap() {
        let (mut sim, mh) = thesis_world(false, walk());
        sim.run_until(SimTime::from_secs(15));
        let events = &sim.actor::<Mh>(mh).unwrap().events;
        let trig = events
            .iter()
            .find(|(_, e)| matches!(e, L2Event::SourceTrigger { .. }))
            .expect("trigger expected");
        // Overlap spans x in [100, 112] → t in [10 s, 11.2 s].
        assert!(trig.0 >= SimTime::from_secs(10), "at {}", trig.0);
        assert!(trig.0 <= SimTime::from_millis(11_300), "at {}", trig.0);
        match trig.1 {
            L2Event::SourceTrigger { current, next } => {
                assert_eq!(current, ApId(0));
                assert_eq!(next, ApId(1));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn protocol_driven_handoff_completes_after_blackout() {
        let (mut sim, mh) = thesis_world(true, walk());
        sim.run_until(SimTime::from_secs(15));
        let m = sim.actor::<Mh>(mh).unwrap();
        let down = m
            .events
            .iter()
            .find(|(_, e)| matches!(e, L2Event::LinkDown { .. }))
            .expect("link down");
        let up = m
            .events
            .iter()
            .find(|(t, e)| matches!(e, L2Event::LinkUp { ap } if *ap == ApId(1)) && *t > down.0)
            .expect("link up on new AP");
        let blackout = up.0 - down.0;
        assert_eq!(blackout, SimDuration::from_millis(200));
        assert_eq!(sim.shared.radio.attachment(mh), Some(ApId(1)));
    }

    #[test]
    fn unanticipated_handoff_happens_on_coverage_loss() {
        // No protocol reaction: the radio must save itself at x > 112.
        let (mut sim, mh) = thesis_world(false, walk());
        sim.run_until(SimTime::from_secs(15));
        let m = sim.actor::<Mh>(mh).unwrap();
        let down = m
            .events
            .iter()
            .find(|(_, e)| matches!(e, L2Event::LinkDown { .. }))
            .expect("link down");
        // Coverage ends at x = 112 → t = 11.2 s.
        assert!(down.0 >= SimTime::from_millis(11_200));
        assert!(down.0 <= SimTime::from_millis(11_400));
        assert_eq!(sim.shared.radio.attachment(mh), Some(ApId(1)));
        assert_eq!(m.radio.as_ref().unwrap().handoffs_completed, 1);
    }

    #[test]
    fn ping_pong_triggers_on_both_directions() {
        let mobility =
            Mobility::ping_pong(Position::new(20.0, 0.0), Position::new(192.0, 0.0), 10.0);
        let (mut sim, mh) = thesis_world(true, mobility);
        // One full period is 2 * 172 m / 10 m/s = 34.4 s.
        sim.run_until(SimTime::from_secs(70));
        let m = sim.actor::<Mh>(mh).unwrap();
        let handoffs = m.radio.as_ref().unwrap().handoffs_completed;
        assert!(handoffs >= 4, "expected ≥4 handoffs, got {handoffs}");
        // Alternating attachment directions.
        let ups: Vec<ApId> = m
            .events
            .iter()
            .filter_map(|(_, e)| match e {
                L2Event::LinkUp { ap } => Some(*ap),
                _ => None,
            })
            .collect();
        for w in ups.windows(2) {
            assert_ne!(w[0], w[1], "consecutive attaches must alternate");
        }
    }

    #[test]
    fn no_trigger_while_approaching_the_ap() {
        // Walking toward AP0's centre from the overlap: signal improves,
        // no trigger even though AP1 also covers the start.
        let mobility = Mobility::linear(Position::new(105.0, 0.0), Position::new(10.0, 0.0), 10.0);
        let (mut sim, mh) = thesis_world(false, mobility);
        sim.run_until(SimTime::from_secs(12));
        let m = sim.actor::<Mh>(mh).unwrap();
        assert!(
            !m.events
                .iter()
                .any(|(_, e)| matches!(e, L2Event::SourceTrigger { .. })),
            "no trigger expected: {:?}",
            m.events
        );
    }

    #[test]
    fn signal_mode_triggers_later_than_geometry() {
        // With discs sized to the signal model's usable range (≈132 m),
        // the geometric rule triggers as soon as the far AP covers the
        // host; the 5 dB hysteresis rule waits until the NAR is decisively
        // stronger (x ≈ 124 m — well past the midpoint).
        let model = crate::SignalModel::default();
        let radius = model.usable_range_m();
        let walk = Mobility::linear(Position::new(88.0, 0.0), Position::new(212.0, 0.0), 10.0);
        let trigger_time = |signal: Option<crate::SignalModel>| -> SimTime {
            let mut sim = Simulator::new(
                World {
                    topo: Topology::new(),
                    stats: NetStats::new(),
                    radio: RadioEnv::new(WirelessSpec::default_80211b()),
                },
                5,
            );
            let ar1 = sim.add_actor(Box::new(Nop));
            let ar2 = sim.add_actor(Box::new(Nop));
            sim.shared
                .radio
                .add_ap(ar1, Position::new(0.0, 0.0), radius);
            sim.shared
                .radio
                .add_ap(ar2, Position::new(212.0, 0.0), radius);
            let mh = sim.add_actor(Box::new(Mh {
                radio: None,
                events: vec![],
                switch_on_trigger: false,
            }));
            let config = RadioConfig {
                signal,
                ..RadioConfig::default()
            };
            let radio = MhRadio::new(mh, walk.clone(), config);
            sim.actor_mut::<Mh>(mh).unwrap().radio = Some(radio);
            sim.schedule(SimTime::ZERO, mh, NetMsg::Start);
            sim.run_until(SimTime::from_secs(15));
            sim.actor::<Mh>(mh)
                .unwrap()
                .events
                .iter()
                .find(|(_, e)| matches!(e, L2Event::SourceTrigger { .. }))
                .map(|&(t, _)| t)
                .expect("trigger expected")
        };
        let geometric = trigger_time(None);
        let signal = trigger_time(Some(model));
        assert!(
            signal > geometric + SimDuration::from_millis(1_000),
            "hysteresis must delay the trigger: {geometric} vs {signal}"
        );
        // But it still fires inside the coverage (x ≤ 132 → t ≤ 4.45 s).
        assert!(signal <= SimTime::from_millis(4_450), "at {signal}");
    }

    #[test]
    fn make_before_break_skips_the_blackout() {
        // AP0 is the thesis WLAN cell; AP1 is a wide-area cellular sector
        // covering the whole walk. A multi-homed host switching
        // technologies must come up on the new link *before* the old one
        // goes down — no black-out window at all.
        let mut sim = Simulator::new(
            World {
                topo: Topology::new(),
                stats: NetStats::new(),
                radio: RadioEnv::new(WirelessSpec::default_80211b()),
            },
            5,
        );
        let ar1 = sim.add_actor(Box::new(Nop));
        let ar2 = sim.add_actor(Box::new(Nop));
        sim.shared.radio.add_ap(ar1, Position::new(0.0, 0.0), 112.0);
        sim.shared.radio.add_ap_tech(
            ar2,
            Position::new(212.0, 0.0),
            1_500.0,
            crate::RadioTechnology::Cellular,
        );
        let mh = sim.add_actor(Box::new(Mh {
            radio: None,
            events: vec![],
            switch_on_trigger: true,
        }));
        let config = RadioConfig {
            multi_iface: true,
            ..RadioConfig::default()
        };
        let radio = MhRadio::new(mh, walk(), config);
        sim.actor_mut::<Mh>(mh).unwrap().radio = Some(radio);
        sim.schedule(SimTime::ZERO, mh, NetMsg::Start);
        sim.run_until(SimTime::from_secs(15));
        let m = sim.actor::<Mh>(mh).unwrap();
        let up_new = m
            .events
            .iter()
            .find(|(_, e)| matches!(e, L2Event::LinkUp { ap } if *ap == ApId(1)))
            .expect("LinkUp on the cellular link");
        let down_old = m
            .events
            .iter()
            .find(|(_, e)| matches!(e, L2Event::LinkDown { ap } if *ap == ApId(0)))
            .expect("LinkDown on the old WLAN link");
        assert!(
            up_new.0 < down_old.0,
            "make-before-break: new link up ({}) before old link down ({})",
            up_new.0,
            down_old.0
        );
        // The old link is retired only at WLAN coverage loss (x = 112 m).
        assert!(down_old.0 >= SimTime::from_millis(11_200));
        assert_eq!(sim.shared.radio.attachment(mh), Some(ApId(1)));
        assert_eq!(sim.shared.radio.aux_attachment(mh), None);
        assert_eq!(m.radio.as_ref().unwrap().handoffs_completed, 1);
    }

    #[test]
    fn mih_trigger_precedes_link_down() {
        // MIH mode with discs sized to the signal model's usable range:
        // the LinkGoingDown-derived source trigger must fire while the
        // serving link is still up, before any LinkDown.
        let model = crate::SignalModel::default();
        let radius = model.usable_range_m();
        let mut sim = Simulator::new(
            World {
                topo: Topology::new(),
                stats: NetStats::new(),
                radio: RadioEnv::new(WirelessSpec::default_80211b()),
            },
            5,
        );
        let ar1 = sim.add_actor(Box::new(Nop));
        let ar2 = sim.add_actor(Box::new(Nop));
        sim.shared
            .radio
            .add_ap(ar1, Position::new(0.0, 0.0), radius);
        sim.shared
            .radio
            .add_ap(ar2, Position::new(212.0, 0.0), radius);
        let mh = sim.add_actor(Box::new(Mh {
            radio: None,
            events: vec![],
            switch_on_trigger: false,
        }));
        let config = RadioConfig {
            trigger: TriggerMode::Mih,
            signal: Some(model),
            ..RadioConfig::default()
        };
        let radio = MhRadio::new(mh, walk(), config);
        sim.actor_mut::<Mh>(mh).unwrap().radio = Some(radio);
        sim.schedule(SimTime::ZERO, mh, NetMsg::Start);
        sim.run_until(SimTime::from_secs(20));
        let m = sim.actor::<Mh>(mh).unwrap();
        let trig = m
            .events
            .iter()
            .find(|(_, e)| matches!(e, L2Event::SourceTrigger { .. }))
            .expect("MIH-derived trigger expected");
        let down = m
            .events
            .iter()
            .find(|(_, e)| matches!(e, L2Event::LinkDown { .. }))
            .expect("link down at coverage loss");
        assert!(
            trig.0 < down.0,
            "LinkGoingDown trigger ({}) must precede LinkDown ({})",
            trig.0,
            down.0
        );
        match trig.1 {
            L2Event::SourceTrigger { current, next } => {
                assert_eq!(current, ApId(0));
                assert_eq!(next, ApId(1));
            }
            _ => unreachable!(),
        }
        // Exactly one trigger: the latch plus the `triggered` flag keep
        // the storm away even though the degraded condition persists for
        // seconds.
        assert_eq!(
            m.events
                .iter()
                .filter(|(_, e)| matches!(e, L2Event::SourceTrigger { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn searching_host_attaches_when_coverage_appears() {
        // Starts outside all coverage, walks into AP0.
        let mobility = Mobility::linear(Position::new(-200.0, 0.0), Position::new(0.0, 0.0), 10.0);
        let (mut sim, mh) = thesis_world(false, mobility);
        sim.run_until(SimTime::from_secs(30));
        assert_eq!(sim.shared.radio.attachment(mh), Some(ApId(0)));
    }
}
