//! # fh-wireless — 802.11-style wireless substrate
//!
//! The radio layer under the fast-handover reproduction:
//!
//! * [`Position`] / [`Mobility`] — the thesis' geometry (§4.1): linear and
//!   ping-pong constant-speed movement evaluated as pure functions of time.
//! * [`AccessPoint`] / [`RadioEnv`] — disc coverage, one association per
//!   host, and a shared half-duplex channel per AP so buffer flushes
//!   serialize realistically.
//! * [`MhRadio`] — the link-layer process on each mobile host: it raises
//!   L2 source triggers when the signal degrades within reach of another
//!   AP, and models the L2 black-out (default 200 ms) between `LinkDown`
//!   and `LinkUp`.
//!
//! What the paper's 802.11 testbed provides physically, this crate provides
//! behaviourally: a trigger to anticipate handoffs, a black-out during which
//! frames to the host are lost, and a serialized air interface.
//!
//! The substrate is technology-agnostic: every AP carries a
//! [`RadioTechnology`] (WLAN or wide-area cellular, with per-technology
//! rate/latency/coverage), a multi-homed host can hold a second
//! ([`IfaceId::WIDE_AREA`]) association for make-before-break vertical
//! handoffs, and [`MihEngine`] derives 802.21-style
//! `LinkGoingDown`/`LinkUp`/`LinkDown` events that feed the same trigger
//! path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod l2;
mod mih;
mod position;
mod radio;
mod signal;
mod tech;

pub use l2::{MhRadio, RadioConfig, TriggerMode};
pub use mih::{MihConfig, MihEngine, MihEvent};
pub use position::{Mobility, Position};
pub use radio::{
    send_downlink, send_downlink_batch, send_uplink, AccessPoint, RadioEnv, RadioWorld,
    WirelessSpec,
};
pub use signal::SignalModel;
pub use tech::{IfaceId, RadioTechnology};
