//! Received-signal-strength modeling: log-distance path loss and the
//! hysteresis trigger rule real 802.11 stations use.
//!
//! The geometric coverage disc of [`crate::AccessPoint`] answers *whether*
//! a host can talk to an AP; this module answers *how well*, so handoff
//! triggers can be driven the way the thesis describes them ("when poor
//! connection quality on a wireless link is detected", §3.3) instead of by
//! raw distance.
//!
//! The model is the standard log-distance path loss:
//!
//! ```text
//! rssi(d) = tx_power − 10·n·log10(max(d, 1 m))
//! ```
//!
//! and the trigger rule is hysteresis-based: switch candidates only when
//! the neighbor is at least `hysteresis_db` stronger than the serving AP,
//! which suppresses ping-pong at cell boundaries.
//!
//! # Examples
//!
//! ```
//! use fh_wireless::SignalModel;
//!
//! let model = SignalModel::default();
//! let near = model.rssi_at(10.0);
//! let far = model.rssi_at(100.0);
//! assert!(near > far);
//! assert!(model.is_usable(near));
//! // A neighbor must beat the serving AP by the hysteresis margin.
//! assert!(!model.should_switch(-60.0, -58.0));
//! assert!(model.should_switch(-80.0, -70.0));
//! ```

use serde::{Deserialize, Serialize};

/// Log-distance path loss model with a hysteresis switching rule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SignalModel {
    /// Transmit power minus fixed losses, in dBm at 1 m.
    pub tx_power_dbm: f64,
    /// Path-loss exponent (2 free space, 3–4 indoor/urban).
    pub path_loss_exponent: f64,
    /// Receiver sensitivity: below this the link is unusable.
    pub sensitivity_dbm: f64,
    /// A neighbor must be this much stronger before switching.
    pub hysteresis_db: f64,
}

impl Default for SignalModel {
    /// 802.11b-flavoured defaults: −20 dBm at 1 m, exponent 3.3, −90 dBm
    /// sensitivity, 5 dB hysteresis. With these numbers the usable range
    /// is ≈132 m — a disc comparable to the thesis' 112 m coverage.
    fn default() -> Self {
        SignalModel {
            tx_power_dbm: -20.0,
            path_loss_exponent: 3.3,
            sensitivity_dbm: -90.0,
            hysteresis_db: 5.0,
        }
    }
}

impl SignalModel {
    /// Received signal strength at `distance_m` meters.
    #[must_use]
    pub fn rssi_at(&self, distance_m: f64) -> f64 {
        let d = distance_m.max(1.0);
        self.tx_power_dbm - 10.0 * self.path_loss_exponent * d.log10()
    }

    /// `true` if a link at this signal level is usable at all.
    #[must_use]
    pub fn is_usable(&self, rssi_dbm: f64) -> bool {
        rssi_dbm >= self.sensitivity_dbm
    }

    /// The hysteresis rule: switch from `serving_dbm` to `candidate_dbm`?
    #[must_use]
    pub fn should_switch(&self, serving_dbm: f64, candidate_dbm: f64) -> bool {
        candidate_dbm >= serving_dbm + self.hysteresis_db
    }

    /// The distance at which the signal drops to the sensitivity floor —
    /// the model's equivalent of a coverage radius.
    #[must_use]
    pub fn usable_range_m(&self) -> f64 {
        10f64.powf((self.tx_power_dbm - self.sensitivity_dbm) / (10.0 * self.path_loss_exponent))
    }

    /// The distance at which a trigger against an equidistant neighbor
    /// becomes possible: where the serving signal has faded within
    /// `margin_db` of the sensitivity floor.
    #[must_use]
    pub fn trigger_range_m(&self, margin_db: f64) -> f64 {
        10f64.powf(
            (self.tx_power_dbm - (self.sensitivity_dbm + margin_db))
                / (10.0 * self.path_loss_exponent),
        )
    }

    /// The same propagation environment re-budgeted so the usable range
    /// equals `range_m`: only the transmit power changes (exponent,
    /// sensitivity and hysteresis stay put). A wide-area sector has a link
    /// budget matched to its cell size; judging its signal with a WLAN
    /// budget would report a healthy 1500 m cell as permanently
    /// going-down. Media-independent triggers scale the model to the
    /// serving link's coverage before sampling.
    #[must_use]
    pub fn scaled_to_range(&self, range_m: f64) -> SignalModel {
        SignalModel {
            tx_power_dbm: self.sensitivity_dbm
                + 10.0 * self.path_loss_exponent * range_m.max(1.0).log10(),
            ..*self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rssi_decreases_monotonically() {
        let m = SignalModel::default();
        let mut last = f64::INFINITY;
        for d in [1.0, 5.0, 20.0, 50.0, 100.0, 130.0] {
            let r = m.rssi_at(d);
            assert!(r < last, "rssi must fall with distance");
            last = r;
        }
    }

    #[test]
    fn sub_meter_distances_clamp() {
        let m = SignalModel::default();
        assert_eq!(m.rssi_at(0.0), m.rssi_at(1.0));
        assert_eq!(m.rssi_at(0.5), m.rssi_at(1.0));
    }

    #[test]
    fn default_range_matches_thesis_scale() {
        let m = SignalModel::default();
        let range = m.usable_range_m();
        assert!(
            (100.0..160.0).contains(&range),
            "default range should be near the thesis' 112 m, got {range:.1}"
        );
        // At the range edge the signal equals the sensitivity.
        let edge = m.rssi_at(range);
        assert!((edge - m.sensitivity_dbm).abs() < 1e-6);
        assert!(m.is_usable(edge));
        assert!(!m.is_usable(m.rssi_at(range + 1.0)));
    }

    #[test]
    fn hysteresis_suppresses_marginal_switches() {
        let m = SignalModel::default();
        assert!(!m.should_switch(-70.0, -70.0));
        assert!(!m.should_switch(-70.0, -66.0));
        assert!(m.should_switch(-70.0, -65.0));
        // At equal strength midway between two APs, nobody switches —
        // ping-pong is impossible by construction.
        let mid = m.rssi_at(106.0);
        assert!(!m.should_switch(mid, mid));
    }

    #[test]
    fn scaled_model_ranges_track_the_target() {
        let m = SignalModel::default();
        for range in [50.0, 112.0, 1_500.0] {
            let s = m.scaled_to_range(range);
            assert!((s.usable_range_m() - range).abs() < 1e-6, "range {range}");
            assert_eq!(s.sensitivity_dbm, m.sensitivity_dbm);
            assert_eq!(s.path_loss_exponent, m.path_loss_exponent);
            // The going-down margin maps to the same *fraction* of the
            // cell at every scale: media-independent trigger lead time.
            let frac = s.trigger_range_m(8.0) / range;
            let base = m.trigger_range_m(8.0) / m.usable_range_m();
            assert!((frac - base).abs() < 1e-9);
        }
        // Scaling to the model's own range is the identity.
        let id = m.scaled_to_range(m.usable_range_m());
        assert!((id.tx_power_dbm - m.tx_power_dbm).abs() < 1e-9);
    }

    #[test]
    fn trigger_range_is_inside_usable_range() {
        let m = SignalModel::default();
        assert!(m.trigger_range_m(5.0) < m.usable_range_m());
        assert!(m.trigger_range_m(0.0) - m.usable_range_m() < 1e-9);
    }
}
