//! QoS invariants of the enhanced buffer management scheme, verified on
//! full scenario runs (the Table 3.3 promises, §3.1.2 design goals).

use fh_core::{ProtocolConfig, Scheme};
use fh_net::{FlowId, ServiceClass};
use fh_scenarios::{experiments, HmipConfig, HmipScenario, MovementPlan};
use fh_sim::{SimDuration, SimTime};

/// Builds an overloaded single-handover run: three 128 kb/s flows against
/// `capacity`-packet buffers, returning per-flow losses `(RT, HP, BE)`.
fn overloaded_losses(scheme: Scheme, capacity: usize, threshold_a: u32) -> (u64, u64, u64) {
    let mut protocol = ProtocolConfig::with_scheme(scheme);
    protocol.buffer_request = 40;
    protocol.threshold_a = threshold_a;
    let cfg = HmipConfig {
        protocol,
        n_mhs: 1,
        buffer_capacity: capacity,
        movement: MovementPlan::OneWay,
        seed: 5,
        ..HmipConfig::default()
    };
    let mut scenario = HmipScenario::build(cfg);
    let flows: Vec<FlowId> = [
        ServiceClass::RealTime,
        ServiceClass::HighPriority,
        ServiceClass::BestEffort,
    ]
    .iter()
    .map(|&c| scenario.add_audio_128k(0, c))
    .collect();
    scenario.set_traffic_window(SimTime::from_millis(500), SimTime::from_secs(14));
    scenario.run_until(SimTime::from_secs(16));
    (
        scenario.flow_losses(flows[0]),
        scenario.flow_losses(flows[1]),
        scenario.flow_losses(flows[2]),
    )
}

#[test]
fn high_priority_survives_overload_with_classification() {
    let (rt, hp, be) = overloaded_losses(Scheme::PROPOSED, 20, 10);
    assert_eq!(hp, 0, "high priority must not drop (rt={rt}, be={be})");
    assert!(rt > 0, "the overload must be real");
    assert!(be > 0, "best effort absorbs losses");
}

#[test]
fn classification_does_not_change_total_losses() {
    let (rt_on, hp_on, be_on) = overloaded_losses(Scheme::PROPOSED, 20, 10);
    let (rt_off, hp_off, be_off) = overloaded_losses(Scheme::Dual { classify: false }, 20, 10);
    let total_on = rt_on + hp_on + be_on;
    let total_off = rt_off + hp_off + be_off;
    let diff = total_on.abs_diff(total_off);
    // §4.2.2: "the QoS function does not result in additional packet
    // drops" — allow a few packets of slack for timing edges.
    assert!(
        diff <= 4,
        "classification changed totals: {total_on} vs {total_off}"
    );
}

#[test]
fn class_blind_schemes_lose_evenly() {
    let (rt, hp, be) = overloaded_losses(Scheme::Dual { classify: false }, 20, 10);
    let max = rt.max(hp).max(be);
    let min = rt.min(hp).min(be);
    assert!(
        max - min <= max / 4 + 3,
        "class-blind losses should be even: rt={rt} hp={hp} be={be}"
    );
}

#[test]
fn unspecified_class_is_treated_as_best_effort() {
    let run = |class| {
        let mut protocol = ProtocolConfig::proposed();
        protocol.buffer_request = 40;
        let cfg = HmipConfig {
            protocol,
            buffer_capacity: 20,
            movement: MovementPlan::OneWay,
            seed: 5,
            ..HmipConfig::default()
        };
        let mut scenario = HmipScenario::build(cfg);
        let rt = scenario.add_audio_128k(0, ServiceClass::RealTime);
        let hp = scenario.add_audio_128k(0, ServiceClass::HighPriority);
        let probe = scenario.add_audio_128k(0, class);
        scenario.set_traffic_window(SimTime::from_millis(500), SimTime::from_secs(14));
        scenario.run_until(SimTime::from_secs(16));
        let _ = (rt, hp);
        scenario.flow_losses(probe)
    };
    assert_eq!(
        run(ServiceClass::Unspecified),
        run(ServiceClass::BestEffort),
        "unspecified must behave exactly like best effort (Table 3.1)"
    );
}

#[test]
fn case4_drops_best_effort_at_the_par_only() {
    // Capacity 0: neither router can grant (Table 3.2 case 4).
    let (rt, hp, be) = overloaded_losses(Scheme::PROPOSED, 0, 0);
    assert!(rt > 0 && hp > 0 && be > 0, "nothing is protected in case 4");
    // BE is dropped at the PAR by policy, RT/HP are forwarded unbuffered
    // and die at the radio — so BE losses are at least comparable.
    assert!(
        be + 5 >= rt.min(hp),
        "case 4 BE must not fare better: rt={rt} hp={hp} be={be}"
    );
}

#[test]
fn dual_buffering_doubles_lossless_capacity() {
    // The Fig 4.2 knee: the largest N with zero drops, per scheme.
    let series = experiments::buffer_utilization(
        experiments::BufferUtilizationParams {
            max_mhs: 10,
            buffer_capacity: 42,
            buffer_request: 12,
            seed: 42,
        },
        4,
    )
    .series;
    let knee = |label: &str| -> usize {
        series
            .iter()
            .find(|s| s.label == label)
            .expect("series present")
            .points
            .iter()
            .take_while(|&&(_, drops)| drops == 0)
            .count()
    };
    let nar = knee("NAR");
    let dual = knee("DUAL");
    let fh = knee("FH");
    assert_eq!(fh, 0, "no buffering always drops");
    assert!(nar >= 2, "single-router buffering serves a few hosts");
    assert!(
        dual >= 2 * nar,
        "dual buffering must at least double capacity: NAR={nar}, DUAL={dual}"
    );
}

#[test]
fn par_and_nar_only_baselines_are_symmetric() {
    let series = experiments::buffer_utilization(
        experiments::BufferUtilizationParams {
            max_mhs: 8,
            buffer_capacity: 42,
            buffer_request: 12,
            seed: 42,
        },
        4,
    )
    .series;
    let find = |label: &str| {
        &series
            .iter()
            .find(|s| s.label == label)
            .expect("series present")
            .points
    };
    let nar = find("NAR");
    let par = find("PAR");
    for (&(n, a), &(_, b)) in nar.iter().zip(par.iter()) {
        assert!(
            a.abs_diff(b) <= 3,
            "NAR/PAR asymmetric at n={n}: {a} vs {b}"
        );
    }
}

#[test]
fn threshold_a_trades_best_effort_for_high_priority() {
    let r = experiments::threshold_sweep(&[0, 19], 5, 2);
    // With a=0, BE grabs the whole PAR pool; with a=19 it gets nothing.
    assert!(
        r.best_effort_drops[1] > r.best_effort_drops[0],
        "a=19 must hurt best effort: {:?}",
        r.best_effort_drops
    );
    assert!(
        r.high_priority_drops[1] <= r.high_priority_drops[0],
        "a=19 must not hurt high priority: {:?}",
        r.high_priority_drops
    );
}

#[test]
fn blackout_length_scales_unbuffered_losses_only() {
    let r = experiments::blackout_sweep(&[60, 400], 5, 2);
    assert!(
        r.without_buffering[1] > r.without_buffering[0] * 3,
        "unbuffered losses must scale with the black-out: {:?}",
        r.without_buffering
    );
    assert!(
        r.with_buffering[1] <= 2,
        "the proposed scheme should stay lossless even at 400 ms: {:?}",
        r.with_buffering
    );
}

#[test]
fn realtime_delay_is_insensitive_to_the_inter_ar_link() {
    let fast = experiments::delay_trace(Scheme::PROPOSED, 20, 40, SimDuration::from_millis(2), 5);
    let slow = experiments::delay_trace(Scheme::PROPOSED, 20, 40, SimDuration::from_millis(50), 5);
    let max_delay = |r: &experiments::DelayTraceResult, k: usize| {
        r.series[k].iter().map(|&(_, d)| d).fold(0.0f64, f64::max)
    };
    // RT (k=0) is buffered at the NAR: the AR-link delay must not move it
    // by more than the link delta itself.
    let rt_delta = max_delay(&slow, 0) - max_delay(&fast, 0);
    assert!(
        rt_delta < 0.06,
        "real-time delay grew {rt_delta:.3}s with the slow AR link"
    );
    // BE (k=2) is buffered at the PAR and must pay the extra tunnel trip.
    let be_delta = max_delay(&slow, 2) - max_delay(&fast, 2);
    assert!(
        be_delta > 0.05,
        "best effort should feel the 50 ms link: delta {be_delta:.3}s"
    );
}

#[test]
fn high_priority_survives_a_saturated_cell() {
    let r = experiments::background_load(&[64.0, 1024.0], 5, 2);
    assert_eq!(r.hp_losses, vec![0, 0], "HP must stay lossless under load");
    // Tail delay barely moves (< 10 ms drift across a 16× load increase).
    assert!(
        (r.hp_p99_ms[1] - r.hp_p99_ms[0]).abs() < 10.0,
        "HP tail delay must stay flat: {:?}",
        r.hp_p99_ms
    );
    // The background flow pays for the contention instead.
    assert!(r.bg_losses[1] > r.bg_losses[0]);
}
