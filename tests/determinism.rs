//! Reproducibility: identical seeds replay identical simulations, and the
//! simulation is insensitive to how the caller slices `run_until`.

use fh_core::ProtocolConfig;
use fh_net::ServiceClass;
use fh_scenarios::{HmipConfig, HmipScenario, MovementPlan, WlanConfig, WlanScenario};
use fh_sim::{SimDuration, SimTime};

/// Fingerprint of a finished run: everything an experiment would read.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    losses: Vec<u64>,
    delays: Vec<(u64, u64)>, // (seq, delay ns) of flow 0
    handoffs: u64,
    control_total: u64,
    control_bytes: u64,
    events: u64,
}

fn fingerprint(seed: u64, stepped: bool) -> Fingerprint {
    let cfg = HmipConfig {
        protocol: ProtocolConfig::proposed(),
        n_mhs: 3,
        buffer_capacity: 30,
        movement: MovementPlan::PingPong,
        seed,
        ..HmipConfig::default()
    };
    let mut scenario = HmipScenario::build(cfg);
    let flows: Vec<_> = (0..3)
        .map(|i| scenario.add_audio_64k(i, ServiceClass::HighPriority))
        .collect();
    scenario.set_traffic_window(SimTime::from_millis(500), SimTime::from_secs(28));
    let end = SimTime::from_secs(30);
    if stepped {
        let mut t = SimTime::ZERO;
        while t < end {
            t = (t + SimDuration::from_millis(321)).min(end);
            scenario.run_until(t);
        }
    } else {
        scenario.run_until(end);
    }
    Fingerprint {
        losses: flows.iter().map(|&f| scenario.flow_losses(f)).collect(),
        delays: scenario
            .flow_sink(flows[0])
            .delays
            .iter()
            .map(|&(s, d)| (s, d.as_nanos()))
            .collect(),
        handoffs: (0..3).map(|i| scenario.mh_agent(i).handoffs).sum(),
        control_total: scenario.sim.shared.stats.control_total(),
        control_bytes: scenario.sim.shared.stats.control_bytes,
        events: scenario.sim.events_processed(),
    }
}

#[test]
fn identical_seeds_replay_identically() {
    let a = fingerprint(424242, false);
    let b = fingerprint(424242, false);
    assert_eq!(a, b);
}

#[test]
fn run_until_slicing_does_not_change_results() {
    let whole = fingerprint(7, false);
    let sliced = fingerprint(7, true);
    assert_eq!(whole, sliced);
}

#[test]
fn different_seeds_still_satisfy_invariants() {
    for seed in [1, 2, 3, 99, 12345] {
        let f = fingerprint(seed, false);
        assert!(f.handoffs >= 3, "seed {seed}: hosts must hand over");
        assert!(
            f.losses.iter().all(|&l| l <= 2),
            "seed {seed}: high-priority flows should be near-lossless, got {:?}",
            f.losses
        );
        assert!(
            f.events > 10_000,
            "seed {seed}: the run must be substantial"
        );
    }
}

#[test]
fn tcp_scenario_is_deterministic_too() {
    let run = || {
        let mut s = WlanScenario::build(WlanConfig {
            seed: 5,
            ..WlanConfig::default()
        });
        s.run_until(SimTime::from_secs(10));
        (
            s.tcp_receiver().bytes_in_order(),
            s.tcp_sender().trace.sent.len(),
            s.tcp_sender().trace.timeouts.clone(),
            s.sim.events_processed(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn seed_changes_timing_but_not_protocol_outcomes() {
    // The seed feeds RA jitter; the handover itself must stay correct.
    let a = fingerprint(1, false);
    let b = fingerprint(2, false);
    assert_eq!(a.handoffs, b.handoffs, "same geometry, same handoffs");
    // Both lossless (or nearly), regardless of jitter.
    assert!(a.losses.iter().sum::<u64>() <= 6);
    assert!(b.losses.iter().sum::<u64>() <= 6);
}

#[test]
fn invariants_hold_across_a_seed_sweep() {
    // A broad robustness sweep: many seeds, both figure topologies, the
    // key invariants that must never depend on timing jitter.
    for seed in [11u64, 222, 3333, 44444, 555555] {
        let cfg = HmipConfig {
            protocol: ProtocolConfig::proposed(),
            n_mhs: 2,
            buffer_capacity: 40,
            movement: MovementPlan::OneWay,
            seed,
            ..HmipConfig::default()
        };
        let mut s = HmipScenario::build(cfg);
        let flows: Vec<_> = (0..2)
            .map(|i| s.add_audio_64k(i, ServiceClass::HighPriority))
            .collect();
        s.set_traffic_window(SimTime::from_millis(500), SimTime::from_secs(14));
        s.run_until(SimTime::from_secs(16));
        for (i, &f) in flows.iter().enumerate() {
            assert_eq!(
                s.flow_losses(f),
                0,
                "seed {seed}: host {i} must be lossless"
            );
            assert_eq!(s.flow_sink(f).duplicates(), 0, "seed {seed}: no dups");
        }
        assert_eq!(s.par_agent().pool().used(), 0, "seed {seed}: PAR drained");
        assert_eq!(s.nar_agent().pool().used(), 0, "seed {seed}: NAR drained");
        assert_eq!(
            s.par_agent().pool().unreserved(),
            s.par_agent().pool().capacity(),
            "seed {seed}: reservations reclaimed"
        );
    }
}

/// The parallel sweep engine must be a pure reordering of work: the same
/// grid at 1, 2 and 8 worker threads has to produce byte-identical
/// results (the Debug rendering pins every field, including the event
/// counters).
#[test]
fn buffer_utilization_sweep_is_thread_count_invariant() {
    use fh_scenarios::experiments::{buffer_utilization, BufferUtilizationParams};
    let params = BufferUtilizationParams {
        max_mhs: 6,
        buffer_capacity: 42,
        buffer_request: 12,
        seed: 42,
    };
    let sequential = format!("{:?}", buffer_utilization(params, 1));
    for threads in [2, 8] {
        let parallel = format!("{:?}", buffer_utilization(params, threads));
        assert_eq!(
            sequential.as_bytes(),
            parallel.as_bytes(),
            "buffer_utilization diverged at {threads} threads"
        );
    }
}

/// Same contract for a sweep whose grid mixes two series per x point
/// (with/without buffering share a derived seed).
#[test]
fn blackout_sweep_is_thread_count_invariant() {
    use fh_scenarios::experiments::blackout_sweep;
    let grid = [60u64, 120, 240];
    let sequential = format!("{:?}", blackout_sweep(&grid, 5, 1));
    for threads in [2, 8] {
        let parallel = format!("{:?}", blackout_sweep(&grid, 5, threads));
        assert_eq!(
            sequential.as_bytes(),
            parallel.as_bytes(),
            "blackout_sweep diverged at {threads} threads"
        );
    }
}
