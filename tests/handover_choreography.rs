//! End-to-end protocol choreography tests against Figs 3.2–3.5.
//!
//! These run the full Fig 4.1 scenario and check that the message
//! sequence, timing, and side effects of one anticipated handover match
//! the protocol definition.

use fh_core::HandoffPhase;
use fh_net::ServiceClass;
use fh_scenarios::{HmipConfig, HmipScenario, MovementPlan};
use fh_sim::{SimDuration, SimTime};

fn one_way() -> HmipScenario {
    let mut scenario = HmipScenario::build(HmipConfig::default());
    let _ = scenario.add_audio_64k(0, ServiceClass::HighPriority);
    scenario.set_traffic_window(SimTime::from_millis(500), SimTime::from_secs(14));
    scenario.run_until(SimTime::from_secs(16));
    scenario
}

fn phase_time(scenario: &HmipScenario, phase: HandoffPhase) -> Option<SimTime> {
    scenario
        .mh_agent(0)
        .log
        .iter()
        .find(|&&(_, p)| p == phase)
        .map(|&(t, _)| t)
}

#[test]
fn phases_occur_in_protocol_order() {
    let scenario = one_way();
    let order = [
        HandoffPhase::Trigger,
        HandoffPhase::SolicitSent,
        HandoffPhase::AdvReceived,
        HandoffPhase::FbuSent,
        HandoffPhase::LinkDown,
        HandoffPhase::LinkUp,
        HandoffPhase::FnaSent,
        HandoffPhase::BindingComplete,
    ];
    // Find each phase at-or-after the previous one (the boot attach also
    // logs a LinkUp/BindingComplete pair at t≈0, which must be skipped).
    let mut last = SimTime::ZERO;
    for phase in order {
        let t = scenario
            .mh_agent(0)
            .log
            .iter()
            .find(|&&(t, p)| p == phase && t >= last && t > SimTime::from_millis(100))
            .map(|&(t, _)| t)
            .unwrap_or_else(|| panic!("phase {phase:?} missing after {last}"));
        assert!(t >= last, "{phase:?} out of order at {t}");
        last = t;
    }
}

#[test]
fn blackout_lasts_exactly_the_configured_l2_delay() {
    let scenario = one_way();
    let down = phase_time(&scenario, HandoffPhase::LinkDown).expect("link down");
    // The boot LinkUp is logged before LinkDown; find the one after.
    let up = scenario
        .mh_agent(0)
        .log
        .iter()
        .find(|&&(t, p)| p == HandoffPhase::LinkUp && t > down)
        .map(|&(t, _)| t)
        .expect("link up after blackout");
    assert_eq!(up - down, SimDuration::from_millis(200));
}

#[test]
fn fback_is_received_on_the_old_link_before_detaching() {
    let scenario = one_way();
    let fbu = phase_time(&scenario, HandoffPhase::FbuSent).expect("fbu");
    let down = phase_time(&scenario, HandoffPhase::LinkDown).expect("down");
    // The host waits for the FBAck round trip (radio + processing) before
    // switching — strictly after FBU, well under the fallback timeout.
    assert!(down > fbu, "host must not detach the instant it sends FBU");
    assert!(
        down - fbu < SimDuration::from_millis(50),
        "detach waited past the FBAck fallback: {}",
        down - fbu
    );
}

#[test]
fn signaling_counts_match_one_anticipated_handover() {
    let scenario = one_way();
    let stats = &scenario.sim.shared.stats;
    assert_eq!(stats.control_count("RtSolPr"), 1);
    assert_eq!(stats.control_count("PrRtAdv"), 1);
    assert_eq!(stats.control_count("HI"), 1);
    assert_eq!(stats.control_count("HAck"), 1);
    assert_eq!(stats.control_count("FBU"), 1);
    assert!(stats.control_count("FBAck") >= 1);
    // Boot FNA + handover FNA.
    assert_eq!(stats.control_count("FNA"), 2);
    // Exactly one standalone BF (NAR→PAR) — the only added message (§3.3).
    assert_eq!(stats.control_count("BF"), 1);
    // No standalone buffer-management signaling: everything piggybacks.
    assert_eq!(stats.control_count("BI"), 0);
    assert_eq!(stats.control_count("BA"), 0);
    // RtSolPr+BI, HI+BR, HAck+BA, PrRtAdv+BA, FNA+BF all piggybacked.
    assert!(
        stats.piggybacked >= 5,
        "expected ≥5 piggybacked messages, got {}",
        stats.piggybacked
    );
}

#[test]
fn handover_is_lossless_when_buffers_suffice() {
    let mut scenario = HmipScenario::build(HmipConfig::default());
    let flow = scenario.add_audio_64k(0, ServiceClass::HighPriority);
    scenario.set_traffic_window(SimTime::from_millis(500), SimTime::from_secs(14));
    scenario.run_until(SimTime::from_secs(16));
    assert_eq!(scenario.mh_agent(0).handoffs, 1);
    assert_eq!(scenario.flow_losses(flow), 0, "no packet may be lost");
    assert_eq!(
        scenario.flow_sink(flow).duplicates(),
        0,
        "and none duplicated"
    );
}

#[test]
fn buffers_fill_during_blackout_and_drain_completely() {
    let scenario = one_way();
    let nar = scenario.nar_agent();
    assert!(nar.pool().stats.admitted > 0, "the NAR must have buffered");
    assert_eq!(
        nar.pool().stats.admitted,
        nar.pool().stats.flushed,
        "everything admitted must be flushed: {:?}",
        nar.pool().stats
    );
    assert_eq!(nar.pool().used(), 0, "no packet may linger");
    assert_eq!(scenario.par_agent().pool().used(), 0);
    assert_eq!(nar.metrics.flushes, 1);
}

#[test]
fn map_rebinding_follows_the_handover() {
    let scenario = one_way();
    let anchor = scenario.map_anchor();
    // Boot registration + post-handover registration.
    assert_eq!(anchor.cache.registrations, 2);
    let lcoa = anchor
        .cache
        .lookup(scenario.rcoas[0], scenario.sim.now())
        .expect("binding alive");
    assert!(
        fh_net::doc_subnet(2).contains(lcoa),
        "the binding must point at the NAR subnet after the move, got {lcoa}"
    );
}

#[test]
fn nar_learns_both_host_routes() {
    let scenario = one_way();
    let nar = scenario.nar_agent();
    let iid = 0x100;
    let ncoa = fh_net::doc_subnet(2).host(iid);
    let pcoa = fh_net::doc_subnet(1).host(iid);
    assert_eq!(nar.neighbor(ncoa), Some(scenario.mhs[0]));
    assert_eq!(
        nar.neighbor(pcoa),
        Some(scenario.mhs[0]),
        "the PCoA host route must exist for tunneled stragglers"
    );
}

#[test]
fn sessions_expire_after_their_lifetime() {
    let mut scenario = HmipScenario::build(HmipConfig::default());
    let _ = scenario.add_audio_64k(0, ServiceClass::HighPriority);
    scenario.set_traffic_window(SimTime::from_millis(500), SimTime::from_secs(14));
    // Handover at ~1.4 s; reservation lifetime 5 s; by 10 s both sessions
    // must have been reclaimed.
    scenario.run_until(SimTime::from_secs(16));
    assert!(scenario.par_agent().metrics.expired_sessions >= 1);
    assert!(scenario.nar_agent().metrics.expired_sessions >= 1);
}

#[test]
fn ping_pong_handovers_alternate_roles() {
    let cfg = HmipConfig {
        movement: MovementPlan::PingPong,
        ..HmipConfig::default()
    };
    let mut scenario = HmipScenario::build(cfg);
    let flow = scenario.add_audio_64k(0, ServiceClass::HighPriority);
    scenario.set_traffic_window(SimTime::from_millis(500), SimTime::from_secs(58));
    scenario.run_until(SimTime::from_secs(60));
    let handoffs = scenario.mh_agent(0).handoffs;
    assert!(handoffs >= 4, "expected several handovers, got {handoffs}");
    // Both routers served both roles.
    let par = scenario.par_agent();
    let nar = scenario.nar_agent();
    assert!(par.metrics.par_sessions >= 2 && par.metrics.nar_sessions >= 2);
    assert!(nar.metrics.par_sessions >= 2 && nar.metrics.nar_sessions >= 2);
    // And the traffic survived every crossing.
    assert_eq!(scenario.flow_losses(flow), 0);
}

#[test]
fn no_buffer_scheme_loses_exactly_the_blackout_window() {
    let cfg = HmipConfig {
        protocol: fh_core::ProtocolConfig::with_scheme(fh_core::Scheme::NoBuffer),
        ..HmipConfig::default()
    };
    let mut scenario = HmipScenario::build(cfg);
    let flow = scenario.add_audio_64k(0, ServiceClass::HighPriority);
    scenario.set_traffic_window(SimTime::from_millis(500), SimTime::from_secs(14));
    scenario.run_until(SimTime::from_secs(16));
    let lost = scenario.flow_losses(flow);
    // 200 ms at 50 packets/s ≈ 10 packets, ± in-flight edges.
    assert!(
        (8..=13).contains(&lost),
        "expected ≈10 blackout losses, got {lost}"
    );
}

#[test]
fn protocol_trace_captures_the_fig_3_2_choreography() {
    let mut scenario = HmipScenario::build(HmipConfig::default());
    // The trace ring keeps the *latest* events; size it so the whole run
    // fits and the early Fig 3.2 choreography is never overwritten.
    scenario.sim.shared.stats.trace.enable(4096);
    let _ = scenario.add_audio_64k(0, ServiceClass::HighPriority);
    scenario.set_traffic_window(SimTime::from_millis(500), SimTime::from_secs(14));
    scenario.run_until(SimTime::from_secs(16));
    let rendered = scenario.sim.shared.stats.trace.render();
    // The Fig 3.2 messages appear, in order.
    let order = [
        "RtSolPr", "ctrl HI", "HAck", "PrRtAdv", "ctrl FBU", "FBAck", "LinkDown", "LinkUp",
        "ctrl FNA", "ctrl BF",
    ];
    let mut pos = 0;
    for needle in order {
        let found = rendered[pos..]
            .find(needle)
            .unwrap_or_else(|| panic!("{needle} missing or out of order in trace:\n{rendered}"));
        pos += found;
    }
    // Piggybacked options are flagged.
    assert!(rendered.contains("ctrl RtSolPr 68B piggyback"));
    // Tracing is bounded: nothing wrapped at this capacity, and the ring
    // never stores more than it was given.
    assert!(scenario.sim.shared.stats.trace.len() <= 4096);
    assert_eq!(scenario.sim.shared.stats.trace.overwritten(), 0);
}

#[test]
fn crossing_hosts_exercise_both_roles_simultaneously() {
    // Two hosts pass each other mid-corridor: router A is host 0's PAR and
    // host 1's NAR at the same moment. Both handovers must stay lossless.
    let cfg = HmipConfig {
        n_mhs: 2,
        movement: MovementPlan::Crossing,
        ..HmipConfig::default()
    };
    let mut scenario = HmipScenario::build(cfg);
    let f0 = scenario.add_audio_64k(0, ServiceClass::HighPriority);
    let f1 = scenario.add_audio_64k(1, ServiceClass::HighPriority);
    scenario.set_traffic_window(SimTime::from_millis(500), SimTime::from_secs(14));
    scenario.run_until(SimTime::from_secs(16));
    assert_eq!(scenario.mh_agent(0).handoffs, 1);
    assert_eq!(scenario.mh_agent(1).handoffs, 1);
    assert_eq!(scenario.flow_losses(f0), 0, "eastbound host lost packets");
    assert_eq!(scenario.flow_losses(f1), 0, "westbound host lost packets");
    // Each router served one session in each role.
    for agent in [scenario.par_agent(), scenario.nar_agent()] {
        assert_eq!(agent.metrics.par_sessions, 1);
        assert_eq!(agent.metrics.nar_sessions, 1);
    }
    // And everything drained.
    assert_eq!(scenario.par_agent().pool().used(), 0);
    assert_eq!(scenario.nar_agent().pool().used(), 0);
}
