//! Node-level failure properties: AR crash (with and without restart),
//! MH power loss mid-handover, and the post-quiesce resource-leak audit.
//!
//! The contract under test is soft-state survival: a dead node takes its
//! volatile state with it, every packet it was holding is re-accounted
//! under `Reclaimed`, surviving routers sweep the state that referenced
//! it, and after quiesce nothing — no session, reservation, route or
//! keyed timer — is left behind.

use fh_net::{NodeFaultSpec, ServiceClass};
use fh_scenarios::experiments;
use fh_scenarios::{HmipConfig, HmipScenario, MovementPlan};
use fh_sim::{SimDuration, SimTime};

/// Proposed-scheme config with soft-state lifetimes armed: host routes
/// expire after 2 s unrefreshed, silent peer routers are swept after 2 s.
fn soft_state_config() -> HmipConfig {
    let mut protocol = fh_core::ProtocolConfig::proposed();
    protocol.buffer_request = 40;
    protocol.host_route_lifetime = SimDuration::from_secs(2);
    protocol.dead_peer_timeout = SimDuration::from_secs(2);
    HmipConfig {
        protocol,
        n_mhs: 1,
        buffer_capacity: 40,
        movement: MovementPlan::OneWay,
        seed: 2003,
        ..HmipConfig::default()
    }
}

#[test]
fn nar_crash_mid_handover_reclaims_everything() {
    // The NAR dies at 1.3 s — mid black-out (≈1.21–1.41 s), while it is
    // holding granted buffer space and parked packets for the host.
    let cfg = HmipConfig {
        nar_fault: NodeFaultSpec::crash(SimTime::from_millis(1_300)),
        ..soft_state_config()
    };
    let mut s = HmipScenario::build(cfg);
    let f = s.add_audio_128k(0, ServiceClass::HighPriority);
    s.set_traffic_window(SimTime::from_millis(500), SimTime::from_secs(5));
    s.run_until(SimTime::from_secs(13));

    let stats = &s.sim.shared.stats;
    assert!(!s.nar_agent().is_alive());
    assert_eq!(s.nar_agent().metrics.crashes, 1);
    // The wiped buffer and the in-flight traffic that kept arriving at
    // the dead router are re-accounted, not lost.
    assert!(
        stats.drops(fh_net::DropReason::Reclaimed) > 0,
        "crash must reclaim buffered/in-flight packets: {:?}",
        stats.drops_by_reason()
    );
    // The surviving PAR noticed the silence and swept the sessions that
    // referenced the dead peer.
    assert!(
        s.par_agent().metrics.dead_peer_reclaims > 0 || s.par_agent().metrics.expired_sessions > 0,
        "PAR must not keep state pointing at a dead NAR"
    );
    assert!(s.flow_losses(f) > 0, "a dead NAR costs packets");

    // No wedge: every attempt resolves one way or the other and the run
    // settles into a fully audited, leak-free state.
    let failed = s.finalize();
    assert_eq!(
        s.unresolved_handovers(),
        0,
        "no attempt may stay open (failed={failed})"
    );
    s.assert_conservation();
    let report = s.leak_report();
    assert!(
        report.is_clean(),
        "residual state after quiesce: {report:?}"
    );
}

#[test]
fn nar_crash_and_restart_recovers_service() {
    // Crash after the handover completes (2 s), cold restart one second
    // later: the restarted router has no host routes, so delivery resumes
    // only once the host re-registers off a router advertisement.
    let cfg = HmipConfig {
        nar_fault: NodeFaultSpec::crash_restart(SimTime::from_secs(2), SimDuration::from_secs(1)),
        ..soft_state_config()
    };
    let mut s = HmipScenario::build(cfg);
    let f = s.add_audio_128k(0, ServiceClass::HighPriority);
    s.set_traffic_window(SimTime::from_millis(500), SimTime::from_secs(8));
    s.run_until(SimTime::from_secs(16));

    assert!(s.nar_agent().is_alive(), "the NAR must be back");
    assert_eq!(s.nar_agent().metrics.crashes, 1);
    assert_eq!(s.mh_agent(0).handoffs, 1);
    // Traffic died while the router was down…
    assert!(s.flow_losses(f) > 0, "the outage must cost packets");
    // …and resumed after the restart: the sink keeps receiving well past
    // the outage window (crash 2 s, restart 3 s, re-registration ≤ ~4 s).
    let last_arrival = s.flow_sink(f).bytes.last().map(|&(t, _)| t);
    assert!(
        last_arrival > Some(SimTime::from_secs(6)),
        "delivery must resume after the restart: last={last_arrival:?}"
    );

    let failed = s.finalize();
    assert_eq!(failed, 0, "the pre-crash handover had already resolved");
    s.assert_conservation();
    let report = s.leak_report();
    assert!(
        report.is_clean(),
        "residual state after quiesce: {report:?}"
    );
}

#[test]
fn mh_power_loss_mid_handover_frees_the_orphaned_buffer() {
    // The host loses power at 1.25 s — after the FBU, before attaching at
    // the NAR. The NAR is left holding a granted reservation and parked
    // packets for a host that will never arrive: the classic orphaned
    // buffer. Soft-state lifetimes must reclaim all of it.
    let mut cfg = HmipConfig {
        mh_fault: NodeFaultSpec::power_off(SimTime::from_millis(1_250)),
        ..soft_state_config()
    };
    // Keep the dead-peer sweep out of the way (both routers are healthy
    // here): the *reservation lifetime* must be what frees the buffer.
    cfg.protocol.dead_peer_timeout = SimDuration::from_secs(10);
    let mut s = HmipScenario::build(cfg);
    let f = s.add_audio_128k(0, ServiceClass::HighPriority);
    s.set_traffic_window(SimTime::from_millis(500), SimTime::from_secs(5));
    s.run_until(SimTime::from_secs(13));

    assert!(s.mh_agent(0).is_powered_off());
    let stats = &s.sim.shared.stats;
    // The orphaned reservations expired and released their packets.
    assert!(
        stats.drops(fh_net::DropReason::LifetimeExpired) > 0,
        "orphaned buffers must expire: {:?}",
        stats.drops_by_reason()
    );
    assert_eq!(s.nar_agent().pool().used(), 0, "no packet may stay parked");
    assert_eq!(s.par_agent().pool().used(), 0);
    assert!(s.flow_losses(f) > 0, "a dead host stops receiving");

    let _failed = s.finalize();
    s.assert_conservation();
    // With soft host routes, even the routes the dead host left behind
    // expire — the audit would flag them as stale under hard state.
    let report = s.leak_report();
    assert!(
        report.is_clean(),
        "residual state after quiesce: {report:?}"
    );
}

#[test]
fn node_faults_are_opt_in() {
    assert!(NodeFaultSpec::default().is_noop());
    assert!(!NodeFaultSpec::crash(SimTime::from_secs(1)).is_noop());
    assert!(!NodeFaultSpec::power_off(SimTime::from_secs(1)).is_noop());
}

#[test]
fn storm_sweep_is_thread_invariant_and_leak_free() {
    // Two storm sizes at two worker counts: identical audited outcomes.
    // Every point runs its own conservation and leak audits internally —
    // a leak panics the sweep, so completion is itself the audit.
    let sizes = [6, 12];
    let a = experiments::storm_sweep(&sizes, 5, 1);
    let b = experiments::storm_sweep(&sizes, 5, 2);
    assert_eq!(a.points.len(), b.points.len());
    for (pa, pb) in a.points.iter().zip(&b.points) {
        assert_eq!(pa.n_mhs, pb.n_mhs);
        for (sa, sb) in [(&pa.fmipv6, &pb.fmipv6), (&pa.enhanced, &pb.enhanced)] {
            assert_eq!(sa.class_drops, sb.class_drops, "mhs={}", pa.n_mhs);
            assert_eq!(sa.failed, sb.failed);
            assert_eq!(sa.expired, sb.expired);
            assert_eq!(sa.reclaimed, sb.reclaimed);
            assert_eq!(sa.routes_expired, sb.routes_expired);
            assert_eq!(sa.events, sb.events, "mhs={}", pa.n_mhs);
        }
        // No wedged handover at any storm size, and the enhanced scheme
        // must beat plain FMIPv6 under overload (Fig 4.2 at scale).
        assert_eq!(pa.fmipv6.failed, 0);
        assert_eq!(pa.enhanced.failed, 0);
        let fmipv6: u64 = pa.fmipv6.class_drops.iter().sum();
        let enhanced: u64 = pa.enhanced.class_drops.iter().sum();
        assert!(
            enhanced < fmipv6,
            "enhanced must drop less at mhs={}: {enhanced} vs {fmipv6}",
            pa.n_mhs
        );
    }
}
