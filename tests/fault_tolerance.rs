//! Protocol robustness: signaling messages lost on the inter-router link.
//!
//! Fast handover is an *optimization*; losing its messages must degrade a
//! handover to the unanticipated path (more loss, no protocol deadlock),
//! never wedge the hosts or leak buffer space.

use fh_net::{LinkId, ServiceClass};
use fh_scenarios::{HmipConfig, HmipScenario};
use fh_sim::SimTime;

/// The PAR↔NAR link is the fourth one built in `HmipScenario`.
const AR_LINK: LinkId = LinkId(3);

fn scenario() -> HmipScenario {
    let mut s = HmipScenario::build(HmipConfig::default());
    let _ = s.add_audio_64k(0, ServiceClass::HighPriority);
    s.set_traffic_window(SimTime::from_millis(500), SimTime::from_secs(14));
    s
}

#[test]
fn lost_hi_degrades_to_an_unanticipated_handover() {
    let mut s = scenario();
    // The HI is the first packet the PAR puts on the inter-AR link.
    let par = s.par;
    s.sim.shared.topo.link_mut(AR_LINK).inject_drops(par, 1);
    s.run_until(SimTime::from_secs(16));
    // The anticipation failed: no PrRtAdv ever reached the host…
    assert_eq!(s.sim.shared.stats.control_count("PrRtAdv"), 0);
    // …but the radio saved itself at the coverage edge and the host
    // re-registered through router discovery.
    assert_eq!(s.mh_agent(0).handoffs, 1, "recovery must still count");
    assert_eq!(
        s.sim.shared.radio.attachment(s.mhs[0]),
        Some(s.nar_ap),
        "host ends up attached at the NAR"
    );
    // The MAP points at the new address, so traffic flows again.
    let bound = s
        .map_anchor()
        .cache
        .lookup(s.rcoas[0], s.sim.now())
        .expect("binding");
    assert!(fh_net::doc_subnet(2).contains(bound));
    // The outage costs real packets (no buffering happened), but service
    // resumes: losses stay far below the total.
    let flow = fh_net::FlowId(1);
    let lost = s.flow_losses(flow);
    let sent = s.flow_sent(flow);
    assert!(lost > 5, "an unanticipated handover is not free: {lost}");
    assert!(
        lost < sent / 4,
        "service must resume after recovery: {lost} of {sent}"
    );
}

#[test]
fn lost_hack_leaves_no_stranded_buffer_space() {
    let mut s = scenario();
    let nar = s.nar;
    // The HAck is the first packet the NAR puts on the link.
    s.sim.shared.topo.link_mut(AR_LINK).inject_drops(nar, 1);
    s.run_until(SimTime::from_secs(16));
    // The NAR granted space when it processed the HI; the host never
    // completed the anticipated handover, so that session must have been
    // reclaimed by its lifetime.
    assert_eq!(s.nar_agent().pool().used(), 0, "no stranded packets");
    assert_eq!(
        s.nar_agent().pool().unreserved(),
        s.nar_agent().pool().capacity(),
        "no stranded reservations"
    );
    assert_eq!(s.mh_agent(0).handoffs, 1, "host still recovered");
}

#[test]
fn lost_bf_relay_expires_the_par_buffer_instead_of_leaking() {
    let mut s = HmipScenario::build(HmipConfig::default());
    // Best-effort traffic is what lands in the PAR's buffer (Table 3.3
    // case 1.c), so a lost BF strands exactly those packets.
    let _ = s.add_audio_128k(0, ServiceClass::BestEffort);
    let _ = s.add_audio_128k(0, ServiceClass::HighPriority);
    s.set_traffic_window(SimTime::from_millis(500), SimTime::from_secs(14));
    // Let the negotiation finish (HAck ≈ 1.205 s) *and* the BufferFull
    // spill-back pass (≈1.31 s); the next NAR→PAR packet is the BF relay
    // triggered by the FNA at ≈1.41 s — make that one vanish.
    s.run_until(SimTime::from_millis(1_390));
    let nar = s.nar;
    s.sim.shared.topo.link_mut(AR_LINK).inject_drops(nar, 1);
    s.run_until(SimTime::from_secs(16));
    assert_eq!(s.mh_agent(0).handoffs, 1);
    // The PAR never got the flush order: its buffered packets expired with
    // the reservation (counted, not leaked).
    assert!(
        s.sim
            .shared
            .stats
            .drops(fh_net::DropReason::LifetimeExpired)
            > 0,
        "stranded PAR packets must be reclaimed via the lifetime"
    );
    assert_eq!(s.par_agent().pool().used(), 0);
    assert_eq!(
        s.par_agent().pool().unreserved(),
        s.par_agent().pool().capacity()
    );
}

#[test]
fn repeated_signaling_loss_never_deadlocks() {
    // Drop the first four packets in each direction: HI, retries, HAck…
    // the default protocol has no retransmissions (faithful to the draft;
    // hardening via `RetransmitConfig::hardened()` is opt-in — see
    // tests/chaos.rs), so the host must always fall back to the
    // unanticipated path.
    let mut s = scenario();
    let par = s.par;
    let nar = s.nar;
    {
        let link = s.sim.shared.topo.link_mut(AR_LINK);
        link.inject_drops(par, 4);
        link.inject_drops(nar, 4);
    }
    s.run_until(SimTime::from_secs(16));
    assert_eq!(s.mh_agent(0).handoffs, 1);
    assert_eq!(s.sim.shared.radio.attachment(s.mhs[0]), Some(s.nar_ap));
    // Still making progress at the end of the run.
    let flow = fh_net::FlowId(1);
    let sent = s.flow_sent(flow);
    let received = s.flow_sink(flow).received();
    assert!(received > sent * 3 / 4, "{received} of {sent}");
}
