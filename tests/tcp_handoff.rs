//! TCP behaviour across a pure link-layer handoff (§4.2.4, Figs 4.12–4.14).

use fh_core::{ProtocolConfig, Scheme};
use fh_scenarios::{experiments, WlanConfig, WlanScenario};
use fh_sim::SimTime;

fn run(buffering: bool) -> WlanScenario {
    let protocol = if buffering {
        ProtocolConfig::proposed()
    } else {
        ProtocolConfig::with_scheme(Scheme::NoBuffer)
    };
    let mut scenario = WlanScenario::build(WlanConfig {
        protocol,
        seed: 17,
        ..WlanConfig::default()
    });
    scenario.run_until(SimTime::from_secs(12));
    scenario
}

#[test]
fn blackout_without_buffering_forces_a_coarse_timeout() {
    let scenario = run(false);
    let tx = scenario.tcp_sender();
    assert!(
        !tx.trace.timeouts.is_empty(),
        "losing a window must trigger the RTO"
    );
    // The coarse timers make recovery take 1–1.5 s (thesis §4.2.4).
    let down = scenario
        .mh_agent()
        .log
        .iter()
        .find(|(_, p)| *p == fh_core::HandoffPhase::LinkDown)
        .map(|&(t, _)| t)
        .expect("link down");
    let rto = tx.trace.timeouts[0];
    let gap = (rto - down).as_secs_f64();
    assert!(
        (0.9..=1.6).contains(&gap),
        "RTO should fire 1–1.5 s after the loss, got {gap:.2} s"
    );
}

#[test]
fn buffering_eliminates_the_timeout_entirely() {
    let scenario = run(true);
    let tx = scenario.tcp_sender();
    assert!(
        tx.trace.timeouts.is_empty(),
        "no data lost → no RTO, got {:?}",
        tx.trace.timeouts
    );
    assert!(
        scenario.tcp_receiver().dupacks_sent == 0,
        "no hole should ever be seen by the receiver"
    );
}

#[test]
fn buffering_strictly_improves_goodput() {
    let with = run(true);
    let without = run(false);
    let a = with.tcp_receiver().bytes_in_order();
    let b = without.tcp_receiver().bytes_in_order();
    assert!(a > b, "buffered run must deliver more: {a} vs {b} bytes");
    // The loss is roughly the idle time at link rate: at least half a
    // megabyte over a >1 s stall on a multi-Mb/s path.
    assert!(a - b > 500_000, "gap suspiciously small: {}", a - b);
}

#[test]
fn receiver_stream_is_a_gapless_prefix() {
    for buffering in [true, false] {
        let scenario = run(buffering);
        let rx = scenario.tcp_receiver();
        assert_eq!(
            rx.bytes_in_order() % 1000,
            0,
            "whole segments only (mss = 1000)"
        );
        assert_eq!(
            rx.out_of_order_len(),
            0,
            "everything must be reassembled by the end"
        );
        // The sender never believes more than the receiver has.
        let tx = scenario.tcp_sender();
        assert!(tx.acked_bytes() <= rx.bytes_in_order());
    }
}

#[test]
fn intra_router_handoff_uses_the_short_protocol() {
    let scenario = run(true);
    let ar = scenario.ar_agent();
    assert_eq!(ar.metrics.intra_sessions, 1, "pure-L2 session expected");
    assert_eq!(ar.metrics.par_sessions, 0, "no inter-router negotiation");
    assert_eq!(ar.metrics.nar_sessions, 0);
    assert_eq!(ar.metrics.flushes, 1);
    let stats = &scenario.sim.shared.stats;
    assert_eq!(stats.control_count("HI"), 0, "no HI for an intra handoff");
    assert_eq!(stats.control_count("HAck"), 0);
    assert_eq!(
        stats.control_count("BF"),
        1,
        "standalone BF releases the buffer"
    );
}

#[test]
fn throughput_dip_is_bounded_by_the_blackout_with_buffering() {
    let r = experiments::tcp_l2_handoff(true, 17);
    let (down, up) = r.blackout.expect("blackout happened");
    // Zero-throughput windows may only exist inside [down, up+0.1].
    for &(t, mbps) in &r.throughput {
        if t < down - 0.2 || t > up + 0.2 {
            continue;
        }
        let _ = mbps; // inside the window anything goes
    }
    let dead: Vec<f64> = r
        .throughput
        .iter()
        .filter(|&&(t, m)| m == 0.0 && t > 1.0 && t < 11.0 && (t < down - 0.15 || t > up + 0.15))
        .map(|&(t, _)| t)
        .collect();
    assert!(
        dead.is_empty(),
        "throughput died outside the blackout at {dead:?}"
    );
}

#[test]
fn unbuffered_run_stalls_well_past_the_blackout() {
    let r = experiments::tcp_l2_handoff(false, 17);
    let (_, up) = r.blackout.expect("blackout happened");
    let dead_after = r
        .throughput
        .iter()
        .filter(|&&(t, m)| m == 0.0 && t > up + 0.1 && t < up + 2.0)
        .count();
    assert!(
        dead_after >= 8,
        "expected ≥0.8 s of post-blackout dead air, got {dead_after} bins"
    );
}
