//! Macro mobility: crossing MAP domains under home-agent traffic
//! (thesis chapter 2 — Mobile IPv6 + HMIPv6 working together).

use fh_core::{ProtocolConfig, Scheme};
use fh_net::doc_subnet;
use fh_scenarios::{RoamingConfig, RoamingScenario};
use fh_sim::SimTime;

fn run(cfg: RoamingConfig) -> RoamingScenario {
    let mut s = RoamingScenario::build(cfg);
    s.set_traffic_window(SimTime::from_millis(500), SimTime::from_secs(14));
    s.run_until(SimTime::from_secs(16));
    s
}

#[test]
fn domain_crossing_is_lossless_with_the_proposed_scheme() {
    let s = run(RoamingConfig::default());
    assert_eq!(s.mh_agent().handoffs, 1);
    assert_eq!(s.sink().losses(s.sent()), 0, "no loss across the domains");
    assert_eq!(s.sink().duplicates(), 0);
}

#[test]
fn home_agent_rebinds_to_the_new_regional_address() {
    let s = run(RoamingConfig::default());
    let anchor = s.home_anchor();
    // Boot registration + post-crossing registration.
    assert_eq!(anchor.cache.registrations, 2);
    let rcoa = anchor
        .cache
        .lookup(s.home_addr, s.sim.now())
        .expect("binding alive");
    assert!(
        doc_subnet(20).contains(rcoa),
        "the RCoA must live in MAP2's prefix, got {rcoa}"
    );
}

#[test]
fn both_maps_serve_the_host_in_turn() {
    let s = run(RoamingConfig::default());
    // MAP1: boot binding + the post-handover LCoA refresh before the host
    // discovers MAP2.
    assert!(s.map1_anchor().cache.registrations >= 2);
    assert_eq!(s.map2_anchor().cache.registrations, 1);
    assert!(
        s.map1_anchor().tunneled > 0,
        "MAP1 carried the early traffic"
    );
    assert!(
        s.map2_anchor().tunneled > 0,
        "MAP2 carried the late traffic"
    );
}

#[test]
fn interim_traffic_rides_the_old_chain() {
    // Freeze the run right after the handover but before the 1 Hz RA can
    // reveal MAP2: traffic to the home address must still arrive, via
    // HA → MAP1 → (stale LCoA) → AR1's tunnel → AR2.
    let mut s = RoamingScenario::build(RoamingConfig::default());
    s.set_traffic_window(SimTime::from_millis(500), SimTime::from_secs(14));
    // Handover completes ≈1.41 s; run to 1.6 s.
    s.run_until(SimTime::from_millis(1_600));
    assert_eq!(s.mh_agent().handoffs, 1, "handover done");
    assert_eq!(
        s.map2_anchor().cache.registrations,
        0,
        "MAP2 not yet discovered"
    );
    let received_early = s.sink().received();
    assert!(
        received_early > 40,
        "traffic must keep flowing: {received_early}"
    );
    // "Losses" at a frozen instant are just in-flight packets: the
    // CN→HA→MAP1→AR1→tunnel→AR2 chain is ≈35 ms ≈ 2 packets deep.
    assert!(s.sink().losses(s.sent()) <= 3);
}

#[test]
fn crossing_without_buffering_loses_the_blackout() {
    let cfg = RoamingConfig {
        protocol: ProtocolConfig::with_scheme(Scheme::NoBuffer),
        ..RoamingConfig::default()
    };
    let s = run(cfg);
    let lost = s.sink().losses(s.sent());
    assert!(
        (8..=13).contains(&lost),
        "expected ≈10 black-out losses, got {lost}"
    );
}

#[test]
fn macro_crossing_is_deterministic() {
    let a = run(RoamingConfig::default());
    let b = run(RoamingConfig::default());
    assert_eq!(a.sink().received(), b.sink().received());
    assert_eq!(a.sim.events_processed(), b.sim.events_processed());
}

#[test]
fn route_optimization_bypasses_the_home_agent() {
    let cfg = RoamingConfig {
        route_optimization: true,
        ..RoamingConfig::default()
    };
    let s = run(cfg);
    assert_eq!(s.sink().losses(s.sent()), 0, "still lossless");
    // After the correspondent learned the RCoA, traffic goes straight to
    // the MAP: the HA carries only the pre-binding trickle.
    let via_ha = s.home_anchor().tunneled;
    let direct = s.map1_anchor().tunneled + s.map2_anchor().tunneled;
    assert!(
        via_ha < direct / 10,
        "HA should carry almost nothing with RO: ha={via_ha}, maps={direct}"
    );
    // The CN holds a live binding pointing into MAP2's region.
    let cn = s.sim.actor::<fh_scenarios::CnNode>(s.cn).expect("cn");
    let coa = cn
        .bindings
        .lookup(s.home_addr, s.sim.now())
        .expect("correspondent binding");
    assert!(doc_subnet(20).contains(coa));
}

#[test]
fn without_route_optimization_everything_rides_the_home_agent() {
    let s = run(RoamingConfig::default());
    // Every data packet is intercepted at home.
    assert!(s.home_anchor().tunneled >= s.sink().received());
}
