//! Chaos-engineering properties: deterministic fault injection against
//! the hardened (retransmitting) signaling stack.
//!
//! The contract under test is the degradation ladder: injected loss may
//! cost retransmissions (predictive, slower), then anticipation
//! (reactive), but a handover must never wedge — and every packet the
//! sources emitted must be accounted for by the conservation audit.

use fh_core::{ProtocolConfig, RetransmitConfig};
use fh_net::{FaultSpec, HandoverOutcome, ServiceClass};
use fh_scenarios::experiments::{self, CHAOS_LOSS_PROBS};
use fh_scenarios::{HmipConfig, HmipScenario, MovementPlan};
use fh_sim::SimTime;
use proptest::prelude::*;

fn hardened_protocol() -> ProtocolConfig {
    let mut protocol = ProtocolConfig::proposed();
    protocol.buffer_request = 40;
    protocol.rtx = RetransmitConfig::hardened();
    protocol
}

/// One hardened one-way run with the given faults; returns the scenario
/// after the run and the end-of-run finalize pass.
fn run_one_way(
    ar_link_fault: FaultSpec,
    wireless_fault: FaultSpec,
    seed: u64,
) -> (HmipScenario, u64) {
    let cfg = HmipConfig {
        protocol: hardened_protocol(),
        n_mhs: 1,
        buffer_capacity: 40,
        movement: MovementPlan::OneWay,
        seed,
        ar_link_fault,
        wireless_fault,
        ..HmipConfig::default()
    };
    let mut s = HmipScenario::build(cfg);
    let _ = s.add_audio_64k(0, ServiceClass::HighPriority);
    s.set_traffic_window(SimTime::from_millis(500), SimTime::from_secs(13));
    s.run_until(SimTime::from_secs(16));
    let failed = s.finalize();
    (s, failed)
}

#[test]
fn handover_terminates_under_total_control_plane_loss() {
    // 100 % loss on the PAR↔NAR wire: the HI/HAck negotiation can never
    // complete, and the retry budget bounds how long the PAR tries.
    let (s, failed) = run_one_way(FaultSpec::with_loss(1.0), FaultSpec::default(), 2003);

    // The PAR sent the initial HI plus exactly `max_retries` copies, then
    // gave up — no unbounded retry storm.
    let max_retries = u64::from(RetransmitConfig::hardened().backoff.max_retries);
    assert_eq!(
        s.sim.shared.stats.control_count("HI"),
        1 + max_retries,
        "HI sends must be capped by the retry budget"
    );
    assert_eq!(s.sim.shared.stats.counter("ar.hi_exhausted"), 1);

    // The exchange degraded instead of wedging: the host still moved,
    // re-attached at the NAR, and resolved its attempt.
    assert_eq!(s.mh_agent(0).handoffs, 1, "host must still hand over");
    assert_eq!(s.sim.shared.radio.attachment(s.mhs[0]), Some(s.nar_ap));
    assert_eq!(failed, 0, "no attempt may stay open at end of run");
    assert_eq!(s.unresolved_handovers(), 0);

    // Every data packet is accounted: delivered, or dropped with a reason
    // (the tunnel to the NAR crossed the fully-faulted wire).
    s.assert_conservation();
}

#[test]
fn recovery_under_moderate_loss_stays_predictive_or_reactive() {
    // 10 % loss on wire and air: retransmissions absorb the loss; every
    // attempt must resolve on one of the two working rungs of the ladder.
    let (s, failed) = run_one_way(FaultSpec::with_loss(0.10), FaultSpec::with_loss(0.10), 7);
    assert_eq!(s.mh_agent(0).handoffs, 1);
    assert_eq!(failed, 0);
    let outcomes = s.outcomes();
    let resolved: u64 = outcomes
        .iter()
        .filter(|(o, _)| *o != HandoverOutcome::Failed)
        .map(|&(_, n)| n)
        .sum();
    assert!(resolved >= 1, "the attempt must classify: {outcomes:?}");
    assert_eq!(s.outcome_count_failed(), 0);
    s.assert_conservation();
}

// Small extension trait so the test reads naturally.
trait FailedCount {
    fn outcome_count_failed(&self) -> u64;
}
impl FailedCount for HmipScenario {
    fn outcome_count_failed(&self) -> u64 {
        self.outcomes()
            .iter()
            .find(|(o, _)| *o == HandoverOutcome::Failed)
            .map_or(0, |&(_, n)| n)
    }
}

#[test]
fn chaos_sweep_completes_with_zero_wedged_handovers() {
    // The acceptance bound: loss up to 20 % on the PAR↔NAR wire and both
    // air interfaces. Every point must finish with all attempts resolved
    // (the conservation audit runs inside the sweep and panics on leaks).
    let r = experiments::chaos_sweep(&CHAOS_LOSS_PROBS, 2003, 2);
    assert_eq!(r.points.len(), CHAOS_LOSS_PROBS.len());
    for p in &r.points {
        assert_eq!(p.failed, 0, "wedged handover at loss {}: {:?}", p.loss, p);
        assert!(
            p.predictive + p.reactive >= 3,
            "ping-pong must keep handing over at loss {}: {:?}",
            p.loss,
            p
        );
    }
    // The zero-loss point is clean chaos plumbing: no fault drops, no
    // retransmissions, everything predictive.
    let clean = &r.points[0];
    assert_eq!(clean.fault_drops, 0);
    assert_eq!(clean.retransmissions, 0);
    assert_eq!(clean.reactive, 0);
    // Faults must actually bite at the top of the sweep.
    let worst = r.points.last().expect("points");
    assert!(worst.fault_drops > 0, "20 % loss must drop packets");
}

#[test]
fn faults_and_retransmissions_are_opt_in() {
    // A default build must not arm fault state or retry timers: the
    // faithful thesis figures depend on the draft's one-shot signaling.
    let cfg = HmipConfig::default();
    assert!(cfg.ar_link_fault.is_noop());
    assert!(cfg.wireless_fault.is_noop());
    assert!(!cfg.protocol.rtx.enabled);
    // Node faults and soft-state lifetimes are opt-in too: by default no
    // node crashes, host routes are hard state, and no dead-peer sweep
    // (or any other new timer) perturbs the byte-identical repro runs.
    assert!(cfg.par_fault.is_noop());
    assert!(cfg.nar_fault.is_noop());
    assert!(cfg.mh_fault.is_noop());
    assert_eq!(cfg.protocol.host_route_lifetime, fh_sim::SimDuration::MAX);
    assert_eq!(cfg.protocol.dead_peer_timeout, fh_sim::SimDuration::MAX);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Termination is seed-independent: whatever the fault stream phase,
    /// a fully-faulted control wire ends with a bounded HI count, a
    /// completed handover and a clean audit.
    #[test]
    fn total_control_loss_terminates_for_any_seed(seed in 0u64..1_000_000) {
        let (s, failed) = run_one_way(FaultSpec::with_loss(1.0), FaultSpec::default(), seed);
        let max_retries = u64::from(RetransmitConfig::hardened().backoff.max_retries);
        prop_assert_eq!(s.sim.shared.stats.control_count("HI"), 1 + max_retries);
        prop_assert_eq!(s.mh_agent(0).handoffs, 1);
        prop_assert_eq!(failed, 0);
        s.assert_conservation();
    }
}
