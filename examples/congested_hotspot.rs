//! Congested hotspot: many users leave a cell at once.
//!
//! The scalability problem that motivates the thesis (§3.1.1): a train
//! pulls out of a station and every passenger's phone hands over from the
//! platform router to the next cell at the same time. Each handover wants
//! buffer space; the routers have only so much.
//!
//! The demo sweeps the number of simultaneous movers and shows when each
//! buffering scheme starts dropping — the Fig 4.2 experiment, narrated.
//!
//! ```sh
//! cargo run --release --example congested_hotspot
//! ```

use fh_core::{ProtocolConfig, Scheme};
use fh_net::ServiceClass;
use fh_scenarios::{HmipConfig, HmipScenario, MovementPlan};
use fh_sim::SimTime;

fn drops_for(scheme: Scheme, n: usize) -> u64 {
    let mut protocol = ProtocolConfig::with_scheme(scheme);
    protocol.buffer_request = 12;
    let cfg = HmipConfig {
        protocol,
        n_mhs: n,
        buffer_capacity: 42,
        movement: MovementPlan::OneWay,
        seed: 99,
        ..HmipConfig::default()
    };
    let mut scenario = HmipScenario::build(cfg);
    let flows: Vec<_> = (0..n)
        .map(|i| scenario.add_audio_64k(i, ServiceClass::Unspecified))
        .collect();
    scenario.set_traffic_window(SimTime::from_millis(500), SimTime::from_millis(13_000));
    scenario.run_until(SimTime::from_secs(16));
    flows.iter().map(|&f| scenario.flow_losses(f)).sum()
}

fn main() {
    println!("Congested hotspot: N hosts hand over simultaneously (64 kb/s each)");
    println!("router buffer: 42 packets, request: 12 packets per handover\n");
    let schemes = [
        ("original fast handover (NAR)", Scheme::NarOnly),
        ("smooth-handover draft (PAR)", Scheme::ParOnly),
        ("proposed dual buffering", Scheme::Dual { classify: false }),
        ("no buffering (FH)", Scheme::NoBuffer),
    ];
    println!(
        "{:>5} {:>10} {:>10} {:>10} {:>10}",
        "N", "NAR", "PAR", "DUAL", "FH"
    );
    let mut capacity = [None::<usize>; 4];
    for n in 1..=14 {
        let row: Vec<u64> = schemes.iter().map(|&(_, s)| drops_for(s, n)).collect();
        for (k, &d) in row.iter().enumerate() {
            if d > 0 && capacity[k].is_none() {
                capacity[k] = Some(n - 1);
            }
        }
        println!(
            "{:>5} {:>10} {:>10} {:>10} {:>10}",
            n, row[0], row[1], row[2], row[3]
        );
    }
    println!();
    for (k, (name, _)) in schemes.iter().enumerate() {
        match capacity[k] {
            Some(c) => println!("{name}: serves {c} simultaneous handovers loss-free"),
            None => println!("{name}: no losses in the tested range"),
        }
    }
}
