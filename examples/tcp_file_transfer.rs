//! TCP file transfer across a pure link-layer handoff.
//!
//! A laptop downloads a file over WLAN and walks from one access point to
//! another *inside the same subnet* — no Mobile IP involved, just a 200 ms
//! 802.11 re-association black-out. The original fast handover protocol
//! offers no help here; the thesis' scheme lets the host ask its access
//! router to buffer (Fig 3.5).
//!
//! The demo reproduces the §4.2.4 comparison: without buffering the
//! coarse-grained TCP retransmission timer idles the connection for over a
//! second; with buffering the transfer continues as if nothing happened.
//!
//! ```sh
//! cargo run --example tcp_file_transfer
//! ```

use fh_core::{ProtocolConfig, Scheme};
use fh_scenarios::{WlanConfig, WlanScenario};
use fh_sim::SimTime;

struct TransferReport {
    label: &'static str,
    bytes: u64,
    timeouts: usize,
    blackout: Option<(f64, f64)>,
    idle: f64,
}

fn transfer(buffering: bool) -> TransferReport {
    let protocol = if buffering {
        ProtocolConfig::proposed()
    } else {
        ProtocolConfig::with_scheme(Scheme::NoBuffer)
    };
    let cfg = WlanConfig {
        protocol,
        seed: 11,
        ..WlanConfig::default()
    };
    let mut scenario = WlanScenario::build(cfg);
    scenario.run_until(SimTime::from_secs(12));

    let rx = scenario.tcp_receiver();
    let tx = scenario.tcp_sender();
    // Longest gap between consecutive receiver arrivals = dead time.
    let mut idle: f64 = 0.0;
    for w in rx.trace.received.windows(2) {
        idle = idle.max((w[1].0 - w[0].0).as_secs_f64());
    }
    let log = &scenario.mh_agent().log;
    let down = log
        .iter()
        .find(|(_, p)| *p == fh_core::HandoffPhase::LinkDown)
        .map(|&(t, _)| t.as_secs_f64());
    let up = down.and_then(|d| {
        log.iter()
            .find(|(t, p)| *p == fh_core::HandoffPhase::LinkUp && t.as_secs_f64() > d)
            .map(|&(t, _)| t.as_secs_f64())
    });
    TransferReport {
        label: if buffering {
            "proposed buffering"
        } else {
            "no buffering"
        },
        bytes: rx.bytes_in_order(),
        timeouts: tx.trace.timeouts.len(),
        blackout: down.zip(up),
        idle,
    }
}

fn main() {
    println!("FTP/TCP download across a 200 ms WLAN re-association\n");
    let reports = [transfer(false), transfer(true)];
    for r in &reports {
        println!("== {} ==", r.label);
        if let Some((d, u)) = r.blackout {
            println!("  L2 black-out      : {d:.3} s → {u:.3} s");
        }
        println!("  RTO timeouts      : {}", r.timeouts);
        println!("  longest stall     : {:.3} s", r.idle);
        println!(
            "  bytes delivered   : {} ({:.2} MB)",
            r.bytes,
            r.bytes as f64 / 1e6
        );
        println!();
    }
    let gained = reports[1].bytes.saturating_sub(reports[0].bytes);
    println!(
        "buffering recovered {:.2} MB of goodput and avoided {} coarse timeout(s)",
        gained as f64 / 1e6,
        reports[0].timeouts
    );
}
