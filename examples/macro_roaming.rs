//! Macro roaming: crossing MAP domains under home-address traffic.
//!
//! Builds the two-domain network of `RoamingScenario` (CN → home agent →
//! {MAP1, MAP2} → {AR1, AR2}) and walks a host from one domain into the
//! other while a correspondent streams audio to its **home address**. The
//! fast handover with enhanced buffering covers the radio black-out; the
//! Mobile IPv6 hierarchy re-anchors the host afterwards:
//!
//! 1. FMIPv6 + dual buffering hide the 200 ms black-out (zero loss),
//! 2. the stale MAP1 binding keeps traffic flowing through the old chain,
//! 3. the first router advertisement reveals MAP2 → new RCoA → local
//!    binding update + the one home-agent update macro movement needs.
//!
//! ```sh
//! cargo run --example macro_roaming
//! ```

use fh_scenarios::{RoamingConfig, RoamingScenario};
use fh_sim::SimTime;
use fh_traffic::FlowReport;

fn main() {
    let mut s = RoamingScenario::build(RoamingConfig::default());
    s.set_traffic_window(SimTime::from_millis(500), SimTime::from_secs(14));
    s.run_until(SimTime::from_secs(16));

    println!("home address        : {}", s.home_addr);
    println!("handovers completed : {}", s.mh_agent().handoffs);
    println!();
    println!(
        "home agent bindings : {} registrations",
        s.home_anchor().cache.registrations
    );
    if let Some(rcoa) = s.home_anchor().cache.lookup(s.home_addr, s.sim.now()) {
        println!("home → RCoA         : {rcoa}  (MAP2's subnet)");
    }
    println!(
        "MAP1 tunneled {} packets, MAP2 tunneled {}",
        s.map1_anchor().tunneled,
        s.map2_anchor().tunneled
    );
    println!();
    let report = FlowReport::from_sink(s.sink(), s.sent());
    println!("flow quality: {report}");

    assert_eq!(report.lost, 0, "the crossing must be seamless");
    println!("\nseamless: zero loss across the MAP-domain boundary");
}
