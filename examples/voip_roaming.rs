//! VoIP roaming: the paper's motivating workload.
//!
//! A commuter on a 36 km/h ride takes a voice call (real-time class, the
//! 64 kb/s audio model of §4.1) together with a messaging sync flow
//! (high priority) and a background download (best effort). The host
//! shuttles between two access routers, handing over again and again.
//!
//! The demo runs the same journey twice — once with the original fast
//! handover (NAR-only buffering) and once with the proposed enhanced
//! scheme — and compares what each flow experienced.
//!
//! ```sh
//! cargo run --example voip_roaming
//! ```

use fh_core::{ProtocolConfig, Scheme};
use fh_net::{FlowId, ServiceClass};
use fh_scenarios::{HmipConfig, HmipScenario, MovementPlan};
use fh_sim::{SimDuration, SimTime};
use fh_traffic::FlowReport;

struct Outcome {
    scheme: &'static str,
    handoffs: u64,
    per_flow: Vec<(&'static str, FlowReport)>,
}

fn ride(scheme: Scheme) -> Outcome {
    let mut protocol = ProtocolConfig::with_scheme(scheme);
    protocol.buffer_request = 40;
    let cfg = HmipConfig {
        protocol,
        n_mhs: 1,
        // The thesis compares the baseline with double the per-router
        // buffer (it uses only one router) against the proposed scheme
        // with half at each (§4.2.2).
        buffer_capacity: if scheme == Scheme::NarOnly { 40 } else { 20 },
        movement: MovementPlan::PingPong,
        seed: 7,
        ..HmipConfig::default()
    };
    let mut scenario = HmipScenario::build(cfg);
    let flows: Vec<(&'static str, FlowId)> = vec![
        (
            "voice (RT)",
            scenario.add_audio_128k(0, ServiceClass::RealTime),
        ),
        (
            "sync  (HP)",
            scenario.add_audio_128k(0, ServiceClass::HighPriority),
        ),
        (
            "bulk  (BE)",
            scenario.add_audio_128k(0, ServiceClass::BestEffort),
        ),
    ];
    // Six minutes of riding; stop sources early so the tail drains.
    let end = SimTime::from_secs(180);
    scenario.set_traffic_window(SimTime::from_millis(500), end - SimDuration::from_secs(2));
    scenario.run_until(end);

    let per_flow = flows
        .iter()
        .map(|&(name, f)| {
            (
                name,
                FlowReport::from_sink(scenario.flow_sink(f), scenario.flow_sent(f)),
            )
        })
        .collect();
    Outcome {
        scheme: scheme.label(),
        handoffs: scenario.mh_agent(0).handoffs,
        per_flow,
    }
}

fn main() {
    println!("VoIP roaming: 3 flows x 128 kb/s, ping-pong handovers, 180 s\n");
    for scheme in [Scheme::NarOnly, Scheme::PROPOSED] {
        let o = ride(scheme);
        println!("== {} ({} handovers) ==", o.scheme, o.handoffs);
        println!(
            "{:>12} {:>8} {:>8} {:>7} {:>9} {:>9} {:>9}",
            "flow", "sent", "lost", "burst", "p50(ms)", "p99(ms)", "max(ms)"
        );
        for (name, r) in &o.per_flow {
            println!(
                "{name:>12} {:>8} {:>8} {:>7} {:>9.1} {:>9.1} {:>9.1}",
                r.sent,
                r.lost,
                r.longest_loss_burst,
                r.p50_delay.as_millis_f64(),
                r.p99_delay.as_millis_f64(),
                r.max_delay.as_millis_f64()
            );
        }
        println!();
    }
    println!("The proposed scheme protects the high-priority sync flow across");
    println!("every handover and keeps voice delay bounded by buffering the");
    println!("real-time stream at the *new* router only.");
}
