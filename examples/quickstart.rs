//! Quickstart: one mobile host, one handover, the proposed scheme.
//!
//! Builds the thesis' Fig 4.1 network (CN → MAP → {PAR, NAR}), attaches a
//! 64 kb/s real-time audio flow to a mobile host, walks the host from the
//! PAR's cell into the NAR's cell, and prints what happened: the protocol
//! timeline, buffer activity at both routers, and the flow's loss/delay
//! figures.
//!
//! Run with:
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use fh_net::ServiceClass;
use fh_scenarios::{HmipConfig, HmipScenario};
use fh_sim::SimTime;

fn main() {
    // The thesis' defaults: proposed scheme (DUAL + classification),
    // 200 ms black-out, 20-packet buffers, 2 ms PAR↔NAR link.
    let config = HmipConfig::default();
    println!("scheme           : {}", config.protocol.scheme);
    println!("blackout         : {}", config.l2_handoff_delay);
    println!(
        "buffer capacity  : {} packets per router\n",
        config.buffer_capacity
    );

    let mut scenario = HmipScenario::build(config);
    // Protocol tracing: the ns-2 trace-file analog. The log is a ring
    // that keeps the most recent events, so size it to hold the whole
    // run and the handover choreography survives to the printout.
    scenario.sim.shared.stats.trace.enable(4096);
    let flow = scenario.add_audio_64k(0, ServiceClass::RealTime);
    // Stop the source a little before the end so in-flight packets drain.
    scenario.set_traffic_window(SimTime::from_millis(500), SimTime::from_secs(14));
    scenario.run_until(SimTime::from_secs(16));

    // --- protocol timeline -------------------------------------------
    println!("protocol timeline (mobile host):");
    for (t, phase) in &scenario.mh_agent(0).log {
        println!("  {t}  {phase:?}");
    }

    // --- router activity ----------------------------------------------
    let par = scenario.par_agent();
    let nar = scenario.nar_agent();
    println!(
        "\nPAR: sessions={} flushes={} buffered-stats={:?}",
        par.metrics.par_sessions,
        par.metrics.flushes,
        par.pool().stats
    );
    println!(
        "NAR: sessions={} flushes={} buffered-stats={:?}",
        nar.metrics.nar_sessions,
        nar.metrics.flushes,
        nar.pool().stats
    );
    println!(
        "MAP: tunneled={} bindings={}",
        scenario.map_anchor().tunneled,
        scenario.map_anchor().cache.len()
    );

    // --- flow outcome ---------------------------------------------------
    let sent = scenario.flow_sent(flow);
    let sink = scenario.flow_sink(flow);
    println!(
        "\nflow: sent={} received={} lost={}",
        sent,
        sink.received(),
        sink.losses(sent)
    );
    if let Some(mean) = sink.mean_delay() {
        println!(
            "delay: mean={} max={}",
            mean,
            sink.max_delay().expect("nonempty")
        );
    }
    println!("handoffs completed: {}", scenario.mh_agent(0).handoffs);

    println!("\nprotocol trace (control + L2 + drops):");
    for line in scenario
        .sim
        .shared
        .stats
        .trace
        .render()
        .lines()
        .filter(|l| !l.contains("ctrl RA"))
        .take(24)
    {
        println!("  {line}");
    }

    assert_eq!(
        scenario.mh_agent(0).handoffs,
        1,
        "expected exactly one handover"
    );
}
